"""Search budgets: node/deadline limits and the clock that enforces them.

A :class:`Budget` is a declarative limit on one optimization — at most
``max_nodes`` memo-missed expression computations, at most
``deadline_ms`` milliseconds of wall clock, or both.  A
:class:`BudgetClock` is the running instance the enumerator charges one
:meth:`~BudgetClock.spend_node` per computed expression; crossing either
limit raises :class:`BudgetExhausted`, which the enumerator catches to
return its best-so-far plan (``docs/anytime.md``).

Node budgets are deterministic (the search prefix they admit depends
only on the query and algorithm), which is what the conformance
invariants and the budget-monotonicity property tests rely on; deadlines
are wall-clock and therefore nondeterministic — useful in production,
exercised only by the ``stress``-marked tier.

The registry's ``?budget`` suffix round-trips through
:meth:`Budget.parse_token` / :meth:`Budget.token`: ``?250ms``,
``?5000n``, or both as ``?250ms:5000n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.timing import clock

__all__ = ["Budget", "BudgetClock", "BudgetExhausted"]


class BudgetExhausted(Exception):
    """Raised by :meth:`BudgetClock.spend_node` once a limit is crossed."""


@dataclass(frozen=True)
class Budget:
    """A declarative search limit; ``Budget()`` is unlimited.

    ``max_nodes`` bounds memo-missed expression computations (scans and
    joins both count; memo hits are free).  ``deadline_ms`` bounds wall
    time from the moment the clock starts.  ``None`` means unlimited on
    that axis.
    """

    max_nodes: int | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_nodes is not None and self.max_nodes < 0:
            raise ValueError(f"max_nodes must be >= 0, got {self.max_nodes}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )

    @classmethod
    def nodes(cls, count: int) -> "Budget":
        """A pure node budget (deterministic)."""
        return cls(max_nodes=count)

    @classmethod
    def millis(cls, deadline_ms: float) -> "Budget":
        """A pure wall-clock deadline (nondeterministic)."""
        return cls(deadline_ms=deadline_ms)

    @property
    def is_unlimited(self) -> bool:
        """True when neither axis is bounded."""
        return self.max_nodes is None and self.deadline_ms is None

    # -- registry suffix round-trip ---------------------------------------

    def token(self) -> str:
        """The canonical ``?budget`` suffix body, e.g. ``250ms:5000n``."""
        parts: list[str] = []
        if self.deadline_ms is not None:
            ms = self.deadline_ms
            parts.append(f"{int(ms)}ms" if ms == int(ms) else f"{ms}ms")
        if self.max_nodes is not None:
            parts.append(f"{self.max_nodes}n")
        if not parts:
            raise ValueError("an unlimited budget has no suffix token")
        return ":".join(parts)

    @classmethod
    def parse_token(cls, text: str) -> "Budget":
        """Parse a ``?budget`` suffix body (``250ms``, ``5000n``, both)."""
        if not text:
            raise ValueError("empty budget token")
        max_nodes: int | None = None
        deadline_ms: float | None = None
        for part in text.split(":"):
            if part.endswith("ms"):
                if deadline_ms is not None:
                    raise ValueError(f"duplicate deadline in {text!r}")
                try:
                    deadline_ms = float(part[:-2])
                except ValueError:
                    raise ValueError(
                        f"bad deadline {part!r} in budget token {text!r}"
                    ) from None
                if deadline_ms <= 0:
                    raise ValueError(f"deadline must be > 0 in {text!r}")
            elif part.endswith("n"):
                if max_nodes is not None:
                    raise ValueError(f"duplicate node limit in {text!r}")
                try:
                    max_nodes = int(part[:-1])
                except ValueError:
                    raise ValueError(
                        f"bad node limit {part!r} in budget token {text!r}"
                    ) from None
                if max_nodes < 0:
                    raise ValueError(f"node limit must be >= 0 in {text!r}")
            else:
                raise ValueError(
                    f"budget part {part!r} must end in 'ms' or 'n' "
                    f"(token {text!r})"
                )
        return cls(max_nodes=max_nodes, deadline_ms=deadline_ms)


class BudgetClock:
    """The running enforcement of one :class:`Budget`.

    One clock may span several optimizer phases (the multiphase seeder
    threads a single clock through every phase); :attr:`nodes_spent`
    accumulates across them and :attr:`exhausted` latches.
    """

    __slots__ = ("budget", "nodes_spent", "exhausted", "_max_nodes", "_deadline")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.nodes_spent = 0
        self.exhausted = False
        self._max_nodes = budget.max_nodes
        self._deadline = (
            None
            if budget.deadline_ms is None
            else clock() + budget.deadline_ms / 1e3
        )

    @property
    def unconstrained(self) -> bool:
        """True when this clock can never interrupt the search."""
        return self._max_nodes is None and self._deadline is None

    def spend_node(self) -> None:
        """Charge one memo-missed expression computation.

        Raises :class:`BudgetExhausted` when the charge crosses the node
        limit or the wall-clock deadline has passed.  Once exhausted,
        every further charge raises immediately (shared-clock phases
        degrade to their seeds).
        """
        if self.exhausted:
            raise BudgetExhausted
        max_nodes = self._max_nodes
        if max_nodes is not None and self.nodes_spent >= max_nodes:
            self.exhausted = True
            raise BudgetExhausted
        deadline = self._deadline
        if deadline is not None and clock() >= deadline:
            self.exhausted = True
            raise BudgetExhausted
        self.nodes_spent += 1
