"""Lazy k-best composition over memo cells (Tziavelis-style ranked join).

Given one memoized expression's join candidates — every (partition pair,
join method) the enumerator would scan — and the *ranked* plan lists of
each pair's children, the k cheapest distinct plans for the expression
are the k smallest values of::

    left_ranked[i].cost + right_ranked[j].cost + operator_cost

because both shipped cost models price a join operator from the
*logical* inputs (page/cardinality totals of the vertex masks), never
from which ranked variant produced them, and ``build_join`` assembles
costs as exactly ``left.cost + right.cost + operator``.  That makes the
classic lazy k-smallest-pairs frontier exact: seed a heap with every
candidate's ``(0, 0)`` corner, and each pop at ``(i, j)`` exposes
``(i+1, j)`` and ``(i, j+1)``.

Tie-breaking is ``(cost, candidate index, i, j)`` — the earliest
candidate in enumeration order wins, which reproduces the champion
loop's strict-``<`` keep-first semantics, so rank 0 is bit-identical to
plain ``optimize`` (the ``topk-soundness`` invariant).  Plans are
structurally distinct by construction: distinct candidates differ in
partition or operator, and distinct ``(i, j)`` corners differ in at
least one child subtree.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence, TypeVar

from repro.plans.physical import Plan

__all__ = ["kbest_join_plans", "ranked_scan_plans"]

_Method = TypeVar("_Method")

#: One join candidate: (operator cost, method, ranked left, ranked right).
Candidate = tuple[float, _Method, Sequence[Plan], Sequence[Plan]]


def ranked_scan_plans(plans: Sequence[Plan], k: int) -> tuple[Plan, ...]:
    """The k cheapest scans, stably ordered (first minimal scan stays first)."""
    ranked = sorted(plans, key=lambda plan: plan.cost)
    return tuple(ranked[:k])


def kbest_join_plans(
    k: int,
    candidates: Sequence[Candidate[_Method]],
    build: Callable[[_Method, Plan, Plan], Plan],
) -> tuple[Plan, ...]:
    """The k cheapest distinct join plans over ``candidates``.

    ``candidates`` must be in the enumerator's candidate-scan order
    (pairs outer, methods inner) — the order is the tie-break that keeps
    rank 0 bit-identical to the champion loop.  ``build`` assembles one
    plan from a method and two child plans; it is called at most ``k``
    times (only popped frontier corners materialize).
    """
    heap: list[tuple[float, int, int, int]] = []
    for index, (opcost, _method, lefts, rights) in enumerate(candidates):
        if not lefts or not rights:
            continue
        heap.append((lefts[0].cost + rights[0].cost + opcost, index, 0, 0))
    heapq.heapify(heap)
    seen: set[tuple[int, int, int]] = set()
    push = heapq.heappush
    pop = heapq.heappop
    out: list[Plan] = []
    while heap and len(out) < k:
        _cost, index, i, j = pop(heap)
        opcost, method, lefts, rights = candidates[index]
        out.append(build(method, lefts[i], rights[j]))
        if i + 1 < len(lefts):
            corner = (index, i + 1, j)
            if corner not in seen:
                seen.add(corner)
                push(
                    heap,
                    (
                        lefts[i + 1].cost + rights[j].cost + opcost,
                        index,
                        i + 1,
                        j,
                    ),
                )
        if j + 1 < len(rights):
            corner = (index, i, j + 1)
            if corner not in seen:
                seen.add(corner)
                push(
                    heap,
                    (
                        lefts[i].cost + rights[j + 1].cost + opcost,
                        index,
                        i,
                        j + 1,
                    ),
                )
    return tuple(out)
