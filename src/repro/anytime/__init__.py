"""Anytime + ranked (top-k) enumeration support (``docs/anytime.md``).

This package holds the budget/clock machinery, the zero-node greedy
seed, the gap-bound report, and the lazy k-best composition rule that
:class:`~repro.enumerator.TopDownEnumerator` threads through its search.
It sits beside the enumerator in the layering DAG (rank 6) and never
imports upward — the registry's ``?budget``/``^k`` suffixes and the
multiphase anytime driver live above it.
"""

from repro.anytime.budget import Budget, BudgetClock, BudgetExhausted
from repro.anytime.report import AnytimeReport, gap_bound_from
from repro.anytime.seed import greedy_plan, static_lower_bound
from repro.anytime.topk import kbest_join_plans, ranked_scan_plans

__all__ = [
    "Budget",
    "BudgetClock",
    "BudgetExhausted",
    "AnytimeReport",
    "gap_bound_from",
    "greedy_plan",
    "static_lower_bound",
    "kbest_join_plans",
    "ranked_scan_plans",
]
