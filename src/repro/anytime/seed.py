"""Polynomial-time greedy seeding and static cost floors for anytime search.

The anytime contract — *any* budget returns a valid plan — needs an
incumbent that costs zero search nodes.  :func:`greedy_plan` is a
deterministic greedy operator ordering (GOO-style) run under two merge
rules — cheapest combined plan, and smallest intermediate cardinality
(Fegaras' classic GOO objective) — keeping the cheaper final plan.
Neither rule dominates: cumulative cost wins on chains and stars, while
cardinality avoids the poisoned-intermediate trap on dense graphs,
where a cheap early join can be many orders of magnitude off optimal.
Both passes are restricted to the requested plan space (left-deep
spaces grow one accumulating chain; CP-free spaces only merge
components joined by a predicate).  Its plans are valid members of the
space, so they validate under the same checker as enumerated plans, and
they seed accumulated-cost B&B exactly like a multiphase phase-1 plan.

:func:`static_lower_bound` is the query-wide cost floor used when the
memo holds no root lower bound yet: every plan in every space contains
exactly one scan per base relation, and both shipped cost models price
operators nonnegatively on top of their children, so the sum of each
relation's cheapest scan is a sound lower bound on the optimal plan cost
(``docs/anytime.md`` derives the gap bound from it).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.catalog.query import Query
from repro.core.bitset import bit
from repro.cost.io_model import CostModel
from repro.partition.base import PlanSpace
from repro.plans.physical import INFINITY, Plan

__all__ = ["greedy_plan", "static_lower_bound"]

#: Left-deep greedy tries every start relation up to this many vertices;
#: beyond it, only the cheapest-scan starts (keeps seeding O(n^2)-ish on
#: the >64-relation stress workloads).
_FULL_START_SWEEP = 16
_CAPPED_STARTS = 4


def _best_scan(query: Query, cost_model: CostModel, subset: int) -> Plan:
    """The cheapest unordered scan of a single relation (first-wins)."""
    best: Plan | None = None
    for plan in cost_model.scan_plans(query, subset, None):
        if best is None or plan.cost < best.cost:
            best = plan
    if best is None:
        raise ValueError(f"no scan plan for subset {subset:#x}")
    return best


def _best_join(
    query: Query, cost_model: CostModel, left: Plan, right: Plan
) -> Plan:
    """The cheapest single join of two subplans (first method wins ties)."""
    best_method = None
    best_cost = INFINITY
    for method in cost_model.JOIN_METHODS:
        cost = cost_model.operator_cost(
            query, method, left.vertices, right.vertices
        )
        if cost < best_cost:
            best_cost = cost
            best_method = method
    assert best_method is not None
    return cost_model.build_join(query, best_method, left, right)


def _connected(
    edge_bits: list[tuple[int, int]], a: int, b: int
) -> bool:
    """Whether any predicate crosses the two vertex masks."""
    for u_bit, v_bit in edge_bits:
        if (u_bit & a and v_bit & b) or (u_bit & b and v_bit & a):
            return True
    return False


#: Merge objectives for the bushy greedy: cheapest combined plan, and
#: smallest intermediate cardinality (cost-tie-broken).  Each is a
#: (primary, secondary) key over the candidate merged plan.
_BUSHY_MERGE_KEYS = (
    lambda plan: (plan.cost, plan.cardinality),
    lambda plan: (plan.cardinality, plan.cost),
)


def _greedy_bushy_pass(
    query: Query,
    cost_model: CostModel,
    edge_bits: list[tuple[int, int]],
    require_connected: bool,
    merge_key: Callable[[Plan], tuple[float, float]],
) -> Plan:
    """GOO over connected components: merge the best admissible pair."""
    components: list[tuple[int, Plan]] = [
        (bit(v), _best_scan(query, cost_model, bit(v)))
        for v in range(query.n)
    ]
    while len(components) > 1:
        choice: tuple[tuple[float, float], int, int, Plan] | None = None
        for i, (mask_i, plan_i) in enumerate(components):
            for j, (mask_j, plan_j) in enumerate(components):
                if i == j:
                    continue
                if require_connected and not _connected(
                    edge_bits, mask_i, mask_j
                ):
                    continue
                plan = _best_join(query, cost_model, plan_i, plan_j)
                key = merge_key(plan)
                if choice is None or key < choice[0]:
                    choice = (key, i, j, plan)
        if choice is None:
            raise ValueError(
                "query graph is disconnected; no CP-free greedy plan exists"
            )
        _, i, j, merged = choice
        mask = components[i][0] | components[j][0]
        components = [
            component
            for index, component in enumerate(components)
            if index != i and index != j
        ]
        components.append((mask, merged))
    return components[0][1]


def _greedy_bushy(
    query: Query,
    cost_model: CostModel,
    edge_bits: list[tuple[int, int]],
    require_connected: bool,
) -> Plan:
    """Best of the bushy merge objectives; first-wins on a cost tie."""
    best: Plan | None = None
    for merge_key in _BUSHY_MERGE_KEYS:
        plan = _greedy_bushy_pass(
            query, cost_model, edge_bits, require_connected, merge_key
        )
        if best is None or plan.cost < best.cost:
            best = plan
    assert best is not None
    return best


def _greedy_left_deep(
    query: Query,
    cost_model: CostModel,
    edge_bits: list[tuple[int, int]],
    require_connected: bool,
) -> Plan:
    """Greedy left-deep chain: best next base relation, best start."""
    n = query.n
    scans = [_best_scan(query, cost_model, bit(v)) for v in range(n)]
    if n <= _FULL_START_SWEEP:
        starts = list(range(n))
    else:
        ranked = sorted(range(n), key=lambda v: (scans[v].cost, v))
        starts = ranked[:_CAPPED_STARTS]
    best_plan: Plan | None = None
    for start in starts:
        accumulated = scans[start]
        mask = bit(start)
        feasible = True
        for _ in range(n - 1):
            step: Plan | None = None
            for v in range(n):
                v_bit = bit(v)
                if v_bit & mask:
                    continue
                if require_connected and not _connected(
                    edge_bits, mask, v_bit
                ):
                    continue
                plan = _best_join(query, cost_model, accumulated, scans[v])
                if step is None or plan.cost < step.cost:
                    step = plan
            if step is None:
                feasible = False
                break
            accumulated = step
            mask = accumulated.vertices
        if feasible and (best_plan is None or accumulated.cost < best_plan.cost):
            best_plan = accumulated
    if best_plan is None:
        raise ValueError(
            "query graph is disconnected; no CP-free greedy plan exists"
        )
    return best_plan


def greedy_plan(
    query: Query, cost_model: CostModel, space: PlanSpace
) -> Plan:
    """A deterministic polynomial-time plan in ``space``; zero search nodes.

    Bushy spaces use pairwise greedy operator ordering; left-deep spaces
    grow one accumulating chain from the best of several start
    relations.  Ties break toward the earliest candidate, so the seed is
    reproducible across runs and processes.
    """
    if query.n == 1:
        return _best_scan(query, cost_model, bit(0))
    edge_bits = [
        (bit(edge.u), bit(edge.v)) for edge in query.graph.edges
    ]
    require_connected = not space.allows_cartesian_products
    if space.is_left_deep:
        return _greedy_left_deep(
            query, cost_model, edge_bits, require_connected
        )
    return _greedy_bushy(query, cost_model, edge_bits, require_connected)


def static_lower_bound(query: Query, cost_model: CostModel) -> float:
    """A query-wide floor on any plan's cost: one cheapest scan per relation.

    Sound because every plan's leaves partition the vertex set and both
    cost models accumulate nonnegative operator costs on top of their
    children.  May be zero (e.g. ``C_out`` prices scans at zero), in
    which case the gap bound degrades to infinity unless the memo holds
    a root lower bound.
    """
    total = 0.0
    for v in range(query.n):
        total += _best_scan(query, cost_model, bit(v)).cost
    return total
