"""The anytime optimization outcome: best-so-far cost plus a gap bound.

``gap_bound`` relates the returned plan to the (unknown) optimum as::

    optimal_cost >= plan_cost / (1 + gap_bound)

i.e. ``gap_bound = plan_cost / lower_bound - 1`` for a sound
``lower_bound <= optimal_cost``.  A completed search reports a gap of
exactly zero; an interrupted one takes the tightest available floor —
the memo's accumulated root lower bound (Algorithm 7 stores failed
budgets as per-expression floors) when present, else the static
sum-of-cheapest-scans bound.  See ``docs/anytime.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

__all__ = ["AnytimeReport", "gap_bound_from"]


def gap_bound_from(plan_cost: float, lower_bound: float) -> float:
    """The relative gap bound implied by a sound cost floor.

    A nonpositive floor carries no information, so the bound degrades to
    infinity rather than claiming spurious tightness.
    """
    if lower_bound <= 0.0:
        return math.inf
    return max(0.0, plan_cost / lower_bound - 1.0)


@dataclass(frozen=True)
class AnytimeReport:
    """What one budgeted ``optimize(budget=...)`` run can certify."""

    #: Cost of the returned (best-so-far or optimal) plan.
    plan_cost: float
    #: Sound floor on the optimal plan cost (== ``plan_cost`` if completed).
    lower_bound: float
    #: ``plan_cost / lower_bound - 1`` (0.0 when the search completed).
    gap_bound: float
    #: Memo-missed expressions computed under this run's budget charges.
    nodes_spent: int
    #: The search ran to completion; the plan is exactly optimal.
    completed: bool
    #: The budget interrupted the search (mutually exclusive with above).
    exhausted: bool

    def __post_init__(self) -> None:
        if self.completed == self.exhausted:
            raise ValueError(
                "an anytime run either completes or exhausts its budget"
            )
        if self.gap_bound < 0.0:
            raise ValueError(f"gap bound must be >= 0, got {self.gap_bound}")

    @property
    def certified_floor(self) -> float:
        """``plan_cost / (1 + gap_bound)`` — the soundness statement."""
        if math.isinf(self.gap_bound):
            return 0.0
        return self.plan_cost / (1.0 + self.gap_bound)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe payload for the CLI ``--json`` block and serve tier."""
        return {
            "plan_cost": self.plan_cost,
            "lower_bound": self.lower_bound,
            "gap_bound": None if math.isinf(self.gap_bound) else self.gap_bound,
            "nodes_spent": self.nodes_spent,
            "completed": self.completed,
            "exhausted": self.exhausted,
        }
