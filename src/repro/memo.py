"""Memo tables: plain, budget-aware, memory-bounded, and cross-query.

Section 5.1 observes that top-down partitioning search uses the memo as a
*cache* rather than a table of guaranteed reads: bottom-up dynamic
programming fails if an entry disappears, whereas partitioning search
simply recomputes it.  :class:`MemoTable` therefore supports an optional
cell capacity with LRU eviction (the CPU/storage trade-off experiments of
Figures 21–30), and :class:`GlobalPlanCache` keys entries by canonical
logical expression so plans survive across queries (the ``Q1``/``Q2``
example of Section 5.1).

A populated cell stores either an optimal :class:`~repro.plans.physical.Plan`
or — for accumulated-cost bounding (Algorithm 7) — a *lower bound*: the
largest budget that already failed for the expression, letting future
invocations return failure immediately when their budget is no larger.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.plans.physical import Plan

__all__ = ["MemoEntry", "MemoTable", "GlobalPlanCache", "canonical_expression_key"]


@dataclass
class MemoEntry:
    """One populated memo cell: an optimal plan or a failed-budget bound."""

    plan: Optional[Plan] = None
    lower_bound: Optional[float] = None

    @property
    def has_plan(self) -> bool:
        """True iff the cell stores a plan (not just a lower bound)."""
        return self.plan is not None


class MemoTable:
    """Constant-time lookup by logical expression with optional capacity.

    Parameters
    ----------
    capacity:
        Maximum number of populated cells, or ``None`` for unbounded.
        ``0`` disables storage entirely (every expression is recomputed on
        demand — the "0 %" point of Figure 30).
    metrics:
        Optional counter sink for evictions and peak occupancy.
    policy:
        Eviction policy when over capacity.  ``"lru"`` (the paper's
        experiments) evicts the least-recently-used cell; ``"smallest"``
        implements Section 5.1's suggestion of weighting eviction by the
        logical description — the smallest expression is evicted first,
        since small expressions are the cheapest to recompute.
    """

    POLICIES = ("lru", "smallest")

    def __init__(
        self,
        capacity: int | None = None,
        metrics: Metrics | None = None,
        policy: str = "lru",
    ) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r}")
        self.capacity = capacity
        self.metrics = metrics
        self.policy = policy
        self._cells: OrderedDict[Hashable, MemoEntry] = OrderedDict()
        self._h_occupancy = None
        self._c_evictions = None

    def attach_registry(self, registry) -> None:
        """Feed occupancy-over-time and eviction telemetry into ``registry``.

        ``registry`` is a :class:`~repro.obs.registry.MetricsRegistry`
        (typed loosely to keep this module import-light).  Every store
        observes the populated-cell count, giving the occupancy series of
        the Figures 21–30 storage experiments.
        """
        from repro.obs.registry import MEMO_EVICTIONS, MEMO_OCCUPANCY

        self._h_occupancy = registry.histogram(MEMO_OCCUPANCY)
        self._c_evictions = registry.counter(MEMO_EVICTIONS)

    def _evict_one(self) -> None:
        """Remove one cell according to the eviction policy."""
        if self.policy == "smallest":
            victim = min(self._cells, key=self._cell_weight)
            del self._cells[victim]
        else:
            self._cells.popitem(last=False)
        if self.metrics is not None:
            self.metrics.memo_evictions += 1
        if self._c_evictions is not None:
            self._c_evictions.inc()

    @staticmethod
    def _cell_weight(key: Hashable) -> tuple:
        """Recomputation-cost proxy for the ``smallest`` policy."""
        if isinstance(key, tuple) and key and isinstance(key[0], int):
            return (key[0].bit_count(), key[0])
        return (0, 0)

    # -- keying (overridden by GlobalPlanCache) --------------------------------

    def key_for(self, query: Query, subset: int, order: int | None) -> Hashable:
        """Map a (query, expression, order) triple to a cell key."""
        return (subset, order)

    def plan_for_query(self, query: Query, entry: MemoEntry) -> Optional[Plan]:
        """Return the entry's plan expressed in ``query``'s vertex numbering."""
        return entry.plan

    # -- access ------------------------------------------------------------------

    def get(self, query: Query, subset: int, order: int | None) -> Optional[MemoEntry]:
        """Look up a cell, refreshing its LRU position."""
        key = self.key_for(query, subset, order)
        entry = self._cells.get(key)
        if entry is not None and self.capacity is not None:
            self._cells.move_to_end(key)
        return entry

    def store_plan(
        self, query: Query, subset: int, order: int | None, plan: Plan
    ) -> None:
        """Store an optimal plan, evicting LRU cells if over capacity."""
        self._store(self.key_for(query, subset, order), MemoEntry(plan=plan))

    def store_lower_bound(
        self, query: Query, subset: int, order: int | None, bound: float
    ) -> None:
        """Record that no plan with cost <= ``bound`` exists (Algorithm 7).

        Keeps the largest failed budget if a bound is already present.
        """
        key = self.key_for(query, subset, order)
        existing = self._cells.get(key)
        if existing is not None and existing.lower_bound is not None:
            bound = max(bound, existing.lower_bound)
        self._store(key, MemoEntry(lower_bound=bound))

    def _store(self, key: Hashable, entry: MemoEntry) -> None:
        if self.capacity == 0:
            return
        if key in self._cells:
            self._cells[key] = entry
            if self.capacity is not None:
                self._cells.move_to_end(key)
        else:
            if self.capacity is not None and len(self._cells) >= self.capacity:
                self._evict_one()
            self._cells[key] = entry
        if self.metrics is not None:
            self.metrics.peak_memo_cells = max(
                self.metrics.peak_memo_cells, len(self._cells)
            )
        if self._h_occupancy is not None:
            self._h_occupancy.observe(len(self._cells))

    # -- cross-process export/import (repro.parallel) ---------------------------

    def keys(self) -> list[Hashable]:
        """Current cell keys, in insertion (LRU) order."""
        return list(self._cells)

    def export_entries(
        self, exclude: "set[Hashable] | None" = None
    ) -> list[tuple[int, Optional[int], Optional[tuple], Optional[float]]]:
        """Serialize populated cells as pickle-safe wire tuples.

        Each entry is ``(subset, order, plan_wire, lower_bound)`` where
        ``plan_wire`` is :meth:`~repro.plans.physical.Plan.to_wire` output
        (or ``None`` for lower-bound-only cells).  ``exclude`` skips keys
        already shipped, so workers send per-round deltas only.  Entries
        survive eviction-order round trips: exporting, evicting, and
        re-importing reproduces the same logical contents.

        Only meaningful for memos keyed by ``(subset, order)``;
        :class:`GlobalPlanCache` overrides this to reject export.
        """
        entries = []
        for key, entry in self._cells.items():
            if exclude is not None and key in exclude:
                continue
            subset, order = key
            entries.append(
                (
                    subset,
                    order,
                    None if entry.plan is None else entry.plan.to_wire(),
                    entry.lower_bound,
                )
            )
        return entries

    def import_entries(
        self,
        query: Query,
        entries: list[tuple[int, Optional[int], Optional[tuple], Optional[float]]],
    ) -> int:
        """Fold wire entries (see :meth:`export_entries`) into this memo.

        Deterministic conflict policy: an existing *plan* cell always wins
        (first import wins — under exhaustive search all candidates are
        bit-identical anyway); lower bounds never displace plans and keep
        the max of the failed budgets.  Returns the number of entries that
        changed the table.
        """
        imported = 0
        for subset, order, plan_wire, lower_bound in entries:
            existing = self.get(query, subset, order)
            if plan_wire is not None:
                if existing is not None and existing.has_plan:
                    continue
                self.store_plan(query, subset, order, Plan.from_wire(plan_wire))
                imported += 1
            elif lower_bound is not None:
                if existing is not None and existing.has_plan:
                    continue
                self.store_lower_bound(query, subset, order, lower_bound)
                imported += 1
        return imported

    # -- statistics -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def populated_cells(self) -> int:
        """Cells currently storing a plan or a lower bound."""
        return len(self._cells)

    def plan_cells(self) -> int:
        """Cells currently storing a plan (the "(p)" series of Figure 13)."""
        return sum(1 for e in self._cells.values() if e.has_plan)

    def bound_cells(self) -> int:
        """Cells currently storing only a lower bound."""
        return sum(1 for e in self._cells.values() if not e.has_plan)

    def clear(self) -> None:
        """Drop every cell."""
        self._cells.clear()


def canonical_expression_key(
    query: Query, subset: int, order: int | None
) -> Hashable:
    """Canonical representation of a logical expression (Section 5.1).

    Keys by the *names and statistics* of the relations plus the internal
    predicate signature, so that the same logical expression appearing in
    two different queries (possibly under different vertex numberings)
    maps to the same cell.  The order token is translated to the relation
    name it refers to.
    """
    names = []
    for v in range(query.n):
        if subset >> v & 1:
            r = query.relations[v]
            names.append((r.name, r.cardinality, r.tuples_per_page))
    predicates = []
    for (u, v), sel in query.selectivity.items():
        if subset >> u & 1 and subset >> v & 1:
            a, b = query.relations[u].name, query.relations[v].name
            if a > b:
                a, b = b, a
            predicates.append((a, b, sel))
    order_name = None if order is None else query.relations[order].name
    return (frozenset(names), frozenset(predicates), order_name)


class GlobalPlanCache(MemoTable):
    """A memo shared between queries, keyed by canonical expression.

    Plans are stored with the relation-name → vertex mapping of the query
    that produced them; on retrieval by a different query, the plan is
    relabelled into the reader's vertex numbering.  Top-down partitioning
    search tolerates missing or evicted cells, so the cache can use any
    eviction policy (here: the same LRU as :class:`MemoTable`).
    """

    def __init__(
        self, capacity: int | None = None, metrics: Metrics | None = None
    ) -> None:
        super().__init__(capacity=capacity, metrics=metrics)
        self._name_maps: dict[Hashable, dict[str, int]] = {}

    def key_for(self, query: Query, subset: int, order: int | None) -> Hashable:
        """Key by canonical logical expression (relation names + predicates)."""
        return canonical_expression_key(query, subset, order)

    def export_entries(self, exclude=None):
        """Cross-query cells are not ``(subset, order)``-keyed; refuse export."""
        raise TypeError(
            "GlobalPlanCache entries are keyed by canonical expression and "
            "cannot be exported in the per-query wire format; use a plain "
            "MemoTable for parallel workers"
        )

    def store_plan(
        self, query: Query, subset: int, order: int | None, plan: Plan
    ) -> None:
        """Store a plan along with the writer's name -> vertex mapping."""
        key = self.key_for(query, subset, order)
        self._name_maps[key] = {
            query.relations[v].name: v for v in range(query.n) if subset >> v & 1
        }
        self._store(key, MemoEntry(plan=plan))

    def plan_for_query(self, query: Query, entry: MemoEntry) -> Optional[Plan]:
        """Relabel the stored plan into the reading query's numbering."""
        if entry.plan is None:
            return None
        name_to_reader_vertex = {
            query.relations[v].name: v for v in range(query.n)
        }
        # Writer vertex -> reader vertex, via relation names.
        mapping: dict[int, int] = {}
        for node in entry.plan.iter_nodes():
            if node.is_scan and node.relation is not None:
                writer_v = node.vertices.bit_length() - 1
                reader_v = name_to_reader_vertex.get(node.relation)
                if reader_v is None:
                    return None  # relation unknown to this query
                mapping[writer_v] = reader_v
        try:
            return entry.plan.relabel(mapping)
        except KeyError:
            return None
