"""Memo tables: plain, budget-aware, memory-bounded, and cross-query.

Section 5.1 observes that top-down partitioning search uses the memo as a
*cache* rather than a table of guaranteed reads: bottom-up dynamic
programming fails if an entry disappears, whereas partitioning search
simply recomputes it.  :class:`MemoTable` therefore supports an optional
cell capacity (the CPU/storage trade-off experiments of Figures 21–30)
with pluggable eviction from :mod:`repro.cache.policies` — the paper's
``lru`` and ``smallest`` baselines plus the cost-aware ``cost`` and
``profile`` policies driven by per-cell recompute weights
(:mod:`repro.cache.costing`).  Two further tiers soften capacity misses:
an optional *cold tier* (``cold_capacity``) keeps evicted cells in
compact wire format so eviction is a demotion rather than a loss, and an
optional *shared* :class:`GlobalPlanCache` is consulted read-through (and
populated write-through) so plans survive across queries (the
``Q1``/``Q2`` example of Section 5.1).

A populated cell stores either an optimal :class:`~repro.plans.physical.Plan`
or — for accumulated-cost bounding (Algorithm 7) — a *lower bound*: the
largest budget that already failed for the expression, letting future
invocations return failure immediately when their budget is no larger.
Lower-bound-only cells are deliberately **not** recency-refreshed on
lookup: a bound is budget-relative scratch state, and letting it displace
full plans in the LRU order makes bounded runs strictly worse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Optional, cast

from repro.analysis.metrics import Metrics
from repro.core.bitset import iter_bits
from repro.cache.coldtier import ColdTier
from repro.cache.costing import CostProfile, logical_cost_proxy
from repro.cache.policies import POLICY_NAMES, make_policy
from repro.cache.stats import CacheStats
from repro.catalog.query import Query
from repro.obs.profile import KERNEL_MEMO, NULL_PROFILER, KernelProfiler
from repro.plans.physical import Plan

if TYPE_CHECKING:
    from repro.obs.registry import Counter, Histogram, MetricsRegistry

__all__ = ["MemoEntry", "MemoTable", "GlobalPlanCache", "canonical_expression_key"]

#: ``(subset, order, plan_wire, lower_bound)`` — the pickle-safe cell format
#: shipped between processes; see :meth:`MemoTable.export_entries`.
WireEntry = tuple[int, Optional[int], Optional[tuple[object, ...]], Optional[float]]


@dataclass
class MemoEntry:
    """One populated memo cell: an optimal plan or a failed-budget bound.

    Ranked (top-k) enumeration widens a cell to ``ranked`` — the k
    cheapest distinct plans for the expression, champion first, with
    ``ranked_k`` recording the k it was computed under (``len(ranked) <
    ranked_k`` means the expression has fewer than k plans in total, so
    the list is exhaustive).  Ranked cells occupy ``len(ranked)``
    footprint units against a bounded memo's capacity; demotion to the
    cold tier and shared write-through keep the champion only.
    """

    plan: Optional[Plan] = None
    lower_bound: Optional[float] = None
    ranked: Optional[tuple[Plan, ...]] = None
    ranked_k: int = 0

    @property
    def has_plan(self) -> bool:
        """True iff the cell stores a plan (not just a lower bound)."""
        return self.plan is not None

    @property
    def footprint(self) -> int:
        """Capacity units this cell charges (k for ranked cells, else 1)."""
        return len(self.ranked) if self.ranked else 1


class MemoTable:
    """Constant-time lookup by logical expression with optional capacity.

    Parameters
    ----------
    capacity:
        Maximum number of populated hot cells, or ``None`` for unbounded.
        ``0`` disables storage entirely (every expression is recomputed on
        demand — the "0 %" point of Figure 30).
    metrics:
        Optional counter sink for evictions, demotions, tier hits, and
        peak occupancy.
    policy:
        Eviction policy when over capacity: ``"lru"`` (the paper's
        experiments), ``"smallest"`` (Section 5.1's logical-description
        weighting), ``"cost"`` (GreedyDual over per-cell recompute
        weights), or ``"profile"`` (GreedyDual over offline weights from
        a prior run's trace; see :class:`~repro.cache.costing.CostProfile`).
    cold_capacity:
        Size of the cold demotion tier (``0`` = no cold tier, ``None`` =
        unbounded): evicted cells are kept in wire format and promoted
        back on lookup instead of being recomputed.
    profile:
        Optional :class:`~repro.cache.costing.CostProfile` supplying
        offline recompute weights.  Required in spirit by the
        ``profile`` policy (which falls back to the logical proxy for
        unprofiled cells) and consulted by ``cost`` before the proxy.
    shared:
        Optional :class:`GlobalPlanCache` consulted read-through on local
        misses and populated write-through on plan stores, giving
        cross-query (and cross-enumerator) plan reuse.
    """

    POLICIES = POLICY_NAMES

    def __init__(
        self,
        capacity: int | None = None,
        metrics: Metrics | None = None,
        policy: str = "lru",
        *,
        cold_capacity: int | None = 0,
        profile: CostProfile | None = None,
        shared: "GlobalPlanCache | None" = None,
    ) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self._policy = make_policy(policy)
        self._policy.bind(self._weight_of)
        self.profile = profile
        self.shared = shared
        self.stats = CacheStats()
        if cold_capacity == 0:
            self._cold: ColdTier | None = None
        else:
            self._cold = ColdTier(cold_capacity)
        self._cells: OrderedDict[Hashable, MemoEntry] = OrderedDict()
        self._weights: dict[Hashable, float] = {}
        #: Capacity units occupied (== cell count until ranked cells appear).
        self._footprint = 0
        # Per-cell weights are bookkept only when something consumes them:
        # a weight-driven policy or the cold tier (which reports the
        # recompute cost a promotion saved).
        self._track_weights = capacity is not None and capacity > 0 and (
            self._policy.uses_weights or self._cold is not None
        )
        self._profiler: KernelProfiler = NULL_PROFILER
        self._h_occupancy: Histogram | None = None
        self._c_evictions: Counter | None = None
        self._c_demotions: Counter | None = None
        self._c_cold_hits: Counter | None = None
        self._c_shared_hits: Counter | None = None

    @property
    def policy(self) -> str:
        """Name of the active eviction policy."""
        return self._policy.name

    @property
    def cold_capacity(self) -> int | None:
        """Cold-tier capacity (``0`` when no cold tier is configured)."""
        return 0 if self._cold is None else self._cold.capacity

    @property
    def wants_compute_seconds(self) -> bool:
        """True iff stores benefit from measured per-cell compute time.

        The enumerator uses this to decide whether to run its exclusive
        compute clock (only meaningful under tracing): weight-driven
        policies refine the logical proxy with measured time.
        """
        return self._track_weights and self._policy.uses_weights

    def attach_registry(self, registry: "MetricsRegistry") -> None:
        """Feed occupancy-over-time and eviction telemetry into ``registry``.

        Every store observes the populated-cell count, giving the occupancy
        series of the Figures 21–30 storage experiments;
        eviction/demotion/tier-hit counters complete the memory-hierarchy
        picture.  (The registry import stays lazy so the module is
        import-light; the *type* is only needed when type checking.)
        """
        from repro.obs.registry import (
            MEMO_COLD_HITS,
            MEMO_DEMOTIONS,
            MEMO_EVICTIONS,
            MEMO_OCCUPANCY,
            MEMO_SHARED_HITS,
        )

        self._h_occupancy = registry.histogram(MEMO_OCCUPANCY)
        self._c_evictions = registry.counter(MEMO_EVICTIONS)
        self._c_demotions = registry.counter(MEMO_DEMOTIONS)
        self._c_cold_hits = registry.counter(MEMO_COLD_HITS)
        self._c_shared_hits = registry.counter(MEMO_SHARED_HITS)

    def attach_profiler(self, profiler: KernelProfiler) -> None:
        """Bill eviction/demotion work to the ``memo.table`` kernel.

        Probe/decode/store calls are billed at the call site (the
        enumerator wraps the table in
        :class:`~repro.obs.profile.ProfiledMemoCalls`); evictions happen
        *inside* ``store_plan`` so they are counted here, already within
        the open ``memo.table`` frame.
        """
        self._profiler = profiler

    # -- weights ----------------------------------------------------------------

    def _weight_of(self, key: Hashable) -> float:
        """Recompute weight of a resident cell (policy callback)."""
        return self._weights.get(key, 1.0)

    def _weight_for(
        self,
        query: Query,
        subset: int,
        order: int | None,
        compute_seconds: float | None,
    ) -> float:
        """Resolve the best available recompute weight for one cell.

        ``profile`` policy: profiled weight first (that is the point),
        then measured time, then the logical proxy.  Other policies:
        measured time first, then any attached profile, then the proxy.
        Measured seconds are scaled to microseconds so they land in the
        same magnitude range as profiled ``time`` weights.
        """
        if self._policy.name == "profile" and self.profile is not None:
            weight = self.profile.lookup(subset, order)
            if weight is not None:
                return weight
        if compute_seconds is not None:
            return compute_seconds * 1e6
        if self._policy.name != "profile" and self.profile is not None:
            weight = self.profile.lookup(subset, order)
            if weight is not None:
                return weight
        return logical_cost_proxy(query, subset, order)

    def _evict_one(self) -> None:
        """Demote (or drop) one cell according to the eviction policy.

        Ranked cells demote champion-only: the wire format (and thus the
        cold tier) carries one plan, so the ranked tail is the price of
        eviction — exactly the k× footprint pressure the eviction-quality
        experiments exercise.
        """
        victim = self._policy.choose_victim(self._cells)
        entry = self._cells.pop(victim)
        self._footprint -= entry.footprint
        self._policy.on_remove(victim)
        weight = self._weights.pop(victim, 1.0) if self._track_weights else 1.0
        if self._cold is not None:
            self._cold.put(
                victim,
                None if entry.plan is None else entry.plan.to_wire(),
                entry.lower_bound,
                weight,
            )
            self.stats.demotions += 1
            if self.metrics is not None:
                self.metrics.memo_demotions += 1
            if self._c_demotions is not None:
                self._c_demotions.inc()
            if self._profiler.enabled:
                self._profiler.count(KERNEL_MEMO, "demotions")
        self.stats.evictions += 1
        if self.metrics is not None:
            self.metrics.memo_evictions += 1
        if self._c_evictions is not None:
            self._c_evictions.inc()
        if self._profiler.enabled:
            self._profiler.count(KERNEL_MEMO, "evictions")

    # -- keying (overridden by GlobalPlanCache) --------------------------------

    def key_for(self, query: Query, subset: int, order: int | None) -> Hashable:
        """Map a (query, expression, order) triple to a cell key."""
        return (subset, order)

    def plan_for_query(self, query: Query, entry: MemoEntry) -> Optional[Plan]:
        """Return the entry's plan expressed in ``query``'s vertex numbering."""
        return entry.plan

    # -- access ------------------------------------------------------------------

    def get(self, query: Query, subset: int, order: int | None) -> Optional[MemoEntry]:
        """Look up a cell through every tier: hot, cold, shared.

        A hot *plan* cell refreshes its policy position (recency/score);
        lower-bound-only cells do not, so budget scratch state cannot
        displace full plans.  A cold hit promotes the demoted entry back
        into the hot tier; a shared hit relabels the cross-query plan
        into this query's numbering and caches it locally.
        """
        key = self.key_for(query, subset, order)
        entry = self._cells.get(key)
        if entry is not None:
            self.stats.hits += 1
            if self.capacity is not None and entry.has_plan:
                self._policy.touch(self._cells, key)
            return entry
        if self._cold is not None:
            demoted = self._cold.take(key)
            if demoted is not None:
                entry = MemoEntry(
                    plan=None
                    if demoted.plan_wire is None
                    else Plan.from_wire(demoted.plan_wire),
                    lower_bound=demoted.lower_bound,
                )
                self.stats.cold_hits += 1
                self.stats.recompute_cost_saved += demoted.weight
                if self.metrics is not None:
                    self.metrics.memo_cold_hits += 1
                if self._c_cold_hits is not None:
                    self._c_cold_hits.inc()
                self._store(key, entry, weight=demoted.weight)
                return entry
        if self.shared is not None and self.shared is not self:
            shared_entry = self.shared.get(query, subset, order)
            if shared_entry is not None and shared_entry.has_plan:
                plan = self.shared.plan_for_query(query, shared_entry)
                if plan is not None:
                    entry = MemoEntry(plan=plan)
                    self.stats.shared_hits += 1
                    weight = None
                    if self._track_weights:
                        weight = self._weight_for(query, subset, order, None)
                        self.stats.recompute_cost_saved += weight
                    else:
                        self.stats.recompute_cost_saved += logical_cost_proxy(
                            query, subset, order
                        )
                    if self.metrics is not None:
                        self.metrics.memo_shared_hits += 1
                    if self._c_shared_hits is not None:
                        self._c_shared_hits.inc()
                    self._store(key, entry, weight=weight)
                    return entry
        self.stats.misses += 1
        return None

    def peek(self, query: Query, subset: int, order: int | None) -> Optional[MemoEntry]:
        """Hot-tier-only lookup: no promotion, no recency, no stats."""
        return self._cells.get(self.key_for(query, subset, order))

    def store_plan(
        self,
        query: Query,
        subset: int,
        order: int | None,
        plan: Plan,
        *,
        compute_seconds: float | None = None,
    ) -> None:
        """Store an optimal plan, evicting/demoting cells if over capacity.

        ``compute_seconds`` optionally carries the measured exclusive
        time the enumerator spent producing the plan; weight-driven
        policies prefer it over the logical proxy.
        """
        key = self.key_for(query, subset, order)
        weight = None
        if self._track_weights:
            weight = self._weight_for(query, subset, order, compute_seconds)
        self._store(key, MemoEntry(plan=plan), weight=weight)
        if self.shared is not None and self.shared is not self:
            self.shared.store_plan(query, subset, order, plan)

    def store_ranked(
        self,
        query: Query,
        subset: int,
        order: int | None,
        plans: "tuple[Plan, ...]",
        k: int,
        *,
        compute_seconds: float | None = None,
    ) -> None:
        """Store the k-best ranked plans of one expression (champion first).

        The cell charges ``len(plans)`` footprint units against a bounded
        capacity, and weight-driven policies scale the recompute weight by
        the same factor — losing a ranked cell forfeits k compositions,
        not one.  Only the champion is written through to a shared cache
        (ranked tails are query-local: relabelling k plans per probe
        would defeat the cross-query fast path).
        """
        if not plans:
            raise ValueError("store_ranked needs at least the champion plan")
        key = self.key_for(query, subset, order)
        weight = None
        if self._track_weights:
            weight = self._weight_for(query, subset, order, compute_seconds)
            weight *= len(plans)
        entry = MemoEntry(plan=plans[0], ranked=tuple(plans), ranked_k=k)
        self._store(key, entry, weight=weight)
        if self.shared is not None and self.shared is not self:
            self.shared.store_plan(query, subset, order, plans[0])

    def ranked_for_query(
        self, query: Query, entry: MemoEntry, k: int
    ) -> "tuple[Plan, ...] | None":
        """The entry's ranked plans if they satisfy a request for ``k``.

        Valid when the stored list has at least ``k`` plans, or is
        exhaustive (``len(ranked) < ranked_k`` — the expression has no
        further distinct plans).  Returns ``None`` when the cell cannot
        answer and must be recomputed.
        """
        ranked = entry.ranked
        if ranked is None:
            return None
        if len(ranked) >= k:
            return ranked[:k]
        if len(ranked) < entry.ranked_k:
            return ranked
        return None

    def ranked_cells(self) -> int:
        """Cells currently holding a ranked (top-k) plan list."""
        return sum(1 for e in self._cells.values() if e.ranked is not None)

    def footprint(self) -> int:
        """Capacity units occupied (== cell count without ranked cells)."""
        return self._footprint

    def store_lower_bound(
        self,
        query: Query,
        subset: int,
        order: int | None,
        bound: float,
        *,
        compute_seconds: float | None = None,
    ) -> None:
        """Record that no plan with cost <= ``bound`` exists (Algorithm 7).

        Keeps the largest failed budget if a bound is already present.
        Bounds are query-local scratch state and are never written
        through to a shared cache.
        """
        key = self.key_for(query, subset, order)
        existing = self._cells.get(key)
        if existing is not None and existing.lower_bound is not None:
            bound = max(bound, existing.lower_bound)
        weight = None
        if self._track_weights:
            weight = self._weight_for(query, subset, order, compute_seconds)
        self._store(key, MemoEntry(lower_bound=bound), weight=weight)

    def _store(
        self, key: Hashable, entry: MemoEntry, weight: float | None = None
    ) -> None:
        capacity = self.capacity
        if capacity == 0:
            return
        cells = self._cells
        bounded = capacity is not None
        if self._track_weights:
            self._weights[key] = 1.0 if weight is None else weight
        footprint = entry.footprint
        if key in cells:
            self._footprint += footprint - cells[key].footprint
            cells[key] = entry
            if bounded:
                self._policy.on_store(cells, key)
                # A replacement may grow the cell (plain -> ranked) past
                # capacity; shed cells until it fits or one remains (an
                # oversized lone cell is tolerated, like any oversized
                # cache object).
                while self._footprint > capacity and len(cells) > 1:
                    self._evict_one()
        else:
            if capacity is not None:
                while cells and self._footprint + footprint > capacity:
                    self._evict_one()
            cells[key] = entry
            self._footprint += footprint
            if bounded:
                self._policy.on_store(cells, key)
        if self.metrics is not None:
            self.metrics.peak_memo_cells = max(
                self.metrics.peak_memo_cells, len(cells)
            )
        if self._h_occupancy is not None:
            self._h_occupancy.observe(len(cells))

    # -- cross-process export/import (repro.parallel) ---------------------------

    def keys(self) -> list[Hashable]:
        """Current cell keys, in insertion (LRU) order."""
        return list(self._cells)

    def export_entries(
        self, exclude: "set[Hashable] | None" = None
    ) -> list[WireEntry]:
        """Serialize populated cells as pickle-safe wire tuples.

        Each entry is ``(subset, order, plan_wire, lower_bound)`` where
        ``plan_wire`` is :meth:`~repro.plans.physical.Plan.to_wire` output
        (or ``None`` for lower-bound-only cells).  ``exclude`` skips keys
        already shipped, so workers send per-round deltas only.  Entries
        survive eviction-order round trips: exporting, evicting, and
        re-importing reproduces the same logical contents.

        Only meaningful for memos keyed by ``(subset, order)``;
        :class:`GlobalPlanCache` overrides this to reject export.
        """
        entries: list[WireEntry] = []
        for key, entry in self._cells.items():
            if exclude is not None and key in exclude:
                continue
            subset, order = cast("tuple[int, Optional[int]]", key)
            entries.append(
                (
                    subset,
                    order,
                    None if entry.plan is None else entry.plan.to_wire(),
                    entry.lower_bound,
                )
            )
        return entries

    def import_entries(self, query: Query, entries: list[WireEntry]) -> int:
        """Fold wire entries (see :meth:`export_entries`) into this memo.

        Deterministic conflict policy: an existing *plan* cell always wins
        (first import wins — under exhaustive search all candidates are
        bit-identical anyway); lower bounds never displace plans and keep
        the max of the failed budgets.  Returns the number of entries that
        changed the table.  Only the hot tier is consulted for conflicts —
        an import must not trigger cold promotions or shared read-through.
        """
        imported = 0
        for subset, order, plan_wire, lower_bound in entries:
            existing = self.peek(query, subset, order)
            if plan_wire is not None:
                if existing is not None and existing.has_plan:
                    continue
                self.store_plan(query, subset, order, Plan.from_wire(plan_wire))
                imported += 1
            elif lower_bound is not None:
                if existing is not None and existing.has_plan:
                    continue
                self.store_lower_bound(query, subset, order, lower_bound)
                imported += 1
        return imported

    # -- statistics -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def populated_cells(self) -> int:
        """Cells currently storing a plan or a lower bound (hot tier)."""
        return len(self._cells)

    def plan_cells(self) -> int:
        """Cells currently storing a plan (the "(p)" series of Figure 13)."""
        return sum(1 for e in self._cells.values() if e.has_plan)

    def bound_cells(self) -> int:
        """Cells currently storing only a lower bound."""
        return sum(1 for e in self._cells.values() if not e.has_plan)

    def cold_cells(self) -> int:
        """Entries currently resident in the cold tier."""
        return 0 if self._cold is None else len(self._cold)

    def summary(self) -> dict[str, object]:
        """The ``memo`` block of ``repro optimize --json``."""
        result: dict[str, object] = {
            "policy": self.policy,
            "capacity": self.capacity,
            "cold_capacity": self.cold_capacity,
            "occupancy": len(self._cells),
            "footprint": self._footprint,
            "plan_cells": self.plan_cells(),
            "bound_cells": self.bound_cells(),
            "ranked_cells": self.ranked_cells(),
            "cold_cells": self.cold_cells(),
            "shared": self.shared is not None,
        }
        result.update(self.stats.to_dict())
        if self._cold is not None:
            result["cold_evictions"] = self._cold.evictions
        return result

    def clear(self) -> None:
        """Drop every cell (all tiers) and all policy state."""
        self._cells.clear()
        self._weights.clear()
        self._footprint = 0
        self._policy.reset()
        if self._cold is not None:
            self._cold.clear()


def canonical_expression_key(
    query: Query, subset: int, order: int | None
) -> Hashable:
    """Canonical representation of a logical expression (Section 5.1).

    Keys by the *names and statistics* of the relations plus the internal
    predicate signature, so that the same logical expression appearing in
    two different queries (possibly under different vertex numberings)
    maps to the same cell.  The order token is translated to the relation
    name it refers to.
    """
    names: list[tuple[str, float, int]] = []
    for v in iter_bits(subset):
        r = query.relations[v]
        names.append((r.name, r.cardinality, r.tuples_per_page))
    predicates: list[tuple[str, str, float]] = []
    for (u, v), sel in query.selectivity.items():
        if subset >> u & 1 and subset >> v & 1:
            a, b = query.relations[u].name, query.relations[v].name
            if a > b:
                a, b = b, a
            predicates.append((a, b, sel))
    order_name = None if order is None else query.relations[order].name
    return (frozenset(names), frozenset(predicates), order_name)


class GlobalPlanCache(MemoTable):
    """A memo shared between queries, keyed by canonical expression.

    Plans are stored with the relation-name → vertex mapping of the query
    that produced them; on retrieval by a different query, the plan is
    relabelled into the reader's vertex numbering.  Top-down partitioning
    search tolerates missing or evicted cells, so the cache can use any
    eviction policy — including the cost-aware ones, whose weights are
    computed from the *writing* query's statistics.

    Beyond serving directly as an enumerator's memo, the cache acts as
    the read-through/write-through backing tier of per-query
    :class:`MemoTable`\\ s (their ``shared=`` parameter) and seeds
    parallel workers: :meth:`export_for_query` relabels every applicable
    plan into one query's ``(subset, order)`` wire entries, and
    :meth:`absorb_memo` folds a finished query's memo back in.

    Unlike per-query memos (each owned by exactly one enumerator), a
    shared cache is read and written by whoever holds a reference — the
    serve tier probes and populates it from concurrent optimizer worker
    threads.  Every public entry point therefore serializes on one
    reentrant lock: lookups mutate policy recency order and stores can
    trigger eviction/demotion chains, either of which corrupts the
    underlying ``OrderedDict`` under unsynchronized concurrent access.
    """

    def __init__(
        self,
        capacity: int | None = None,
        metrics: Metrics | None = None,
        policy: str = "lru",
        *,
        cold_capacity: int | None = 0,
        profile: CostProfile | None = None,
    ) -> None:
        super().__init__(
            capacity=capacity,
            metrics=metrics,
            policy=policy,
            cold_capacity=cold_capacity,
            profile=profile,
        )
        self._name_maps: dict[Hashable, dict[str, int]] = {}
        self._lock = threading.RLock()

    def key_for(self, query: Query, subset: int, order: int | None) -> Hashable:
        """Key by canonical logical expression (relation names + predicates)."""
        return canonical_expression_key(query, subset, order)

    # -- concurrency --------------------------------------------------------------
    #
    # Reentrant because absorb_memo calls peek/store_plan and get can
    # recurse into _store (cold promotion); plan_for_query stays lock-free
    # (it only reads an immutable entry already handed to the caller).

    def get(self, query: Query, subset: int, order: int | None) -> Optional[MemoEntry]:
        with self._lock:
            return super().get(query, subset, order)

    def peek(self, query: Query, subset: int, order: int | None) -> Optional[MemoEntry]:
        with self._lock:
            return super().peek(query, subset, order)

    def store_lower_bound(
        self,
        query: Query,
        subset: int,
        order: int | None,
        bound: float,
        *,
        compute_seconds: float | None = None,
    ) -> None:
        with self._lock:
            super().store_lower_bound(
                query, subset, order, bound, compute_seconds=compute_seconds
            )

    def summary(self) -> dict[str, object]:
        with self._lock:
            return super().summary()

    def clear(self) -> None:
        with self._lock:
            super().clear()
            self._name_maps.clear()

    def export_entries(
        self, exclude: "set[Hashable] | None" = None
    ) -> list[WireEntry]:
        """Cross-query cells are not ``(subset, order)``-keyed; refuse export."""
        raise TypeError(
            "GlobalPlanCache entries are keyed by canonical expression and "
            "cannot be exported in the per-query wire format; use "
            "export_for_query(query) to project them onto one query"
        )

    def store_plan(
        self,
        query: Query,
        subset: int,
        order: int | None,
        plan: Plan,
        *,
        compute_seconds: float | None = None,
    ) -> None:
        """Store a plan along with the writer's name -> vertex mapping."""
        with self._lock:
            key = self.key_for(query, subset, order)
            self._name_maps[key] = {
                query.relations[v].name: v for v in iter_bits(subset)
            }
            weight = None
            if self._track_weights:
                weight = self._weight_for(query, subset, order, compute_seconds)
            self._store(key, MemoEntry(plan=plan), weight=weight)

    def store_ranked(
        self,
        query: Query,
        subset: int,
        order: int | None,
        plans: "tuple[Plan, ...]",
        k: int,
        *,
        compute_seconds: float | None = None,
    ) -> None:
        """Cross-query cells keep champions only; the ranked tail is local."""
        if not plans:
            raise ValueError("store_ranked needs at least the champion plan")
        self.store_plan(
            query, subset, order, plans[0], compute_seconds=compute_seconds
        )

    def ranked_for_query(
        self, query: Query, entry: MemoEntry, k: int
    ) -> "tuple[Plan, ...] | None":
        """Never answers ranked requests (plans are writer-numbered)."""
        return None

    def plan_for_query(self, query: Query, entry: MemoEntry) -> Optional[Plan]:
        """Relabel the stored plan into the reading query's numbering."""
        if entry.plan is None:
            return None
        name_to_reader_vertex = {
            query.relations[v].name: v for v in range(query.n)
        }
        # Writer vertex -> reader vertex, via relation names.
        mapping: dict[int, int] = {}
        for node in entry.plan.iter_nodes():
            if node.is_scan and node.relation is not None:
                writer_v = node.vertices.bit_length() - 1
                reader_v = name_to_reader_vertex.get(node.relation)
                if reader_v is None:
                    return None  # relation unknown to this query
                mapping[writer_v] = reader_v
        try:
            return entry.plan.relabel(mapping)
        except KeyError:
            return None

    # -- cross-query projection (repro.parallel seeding) ------------------------

    def export_for_query(self, query: Query) -> list[WireEntry]:
        """Project every applicable plan onto ``query``'s wire format.

        A cached plan applies iff all its relations exist in ``query``
        *and* the canonical key recomputed from the reader's side matches
        the cell's key — the latter guards against same-named relations
        with different statistics or predicates (a plan optimal under old
        stats must not leak into a query with new ones).  The result is
        sorted by ``(subset, order)`` so downstream seeding/merging is
        deterministic regardless of cache insertion history.
        """
        name_to_vertex = {query.relations[v].name: v for v in range(query.n)}
        entries: list[WireEntry] = []
        with self._lock:
            cells = list(self._cells.items())
        for key, entry in cells:
            if not entry.has_plan:
                continue
            plan = self.plan_for_query(query, entry)
            if plan is None:
                continue
            order_name = cast("tuple[object, object, Optional[str]]", key)[2]
            if order_name is None:
                order = None
            else:
                order = name_to_vertex.get(order_name)
                if order is None:
                    continue
            if canonical_expression_key(query, plan.vertices, order) != key:
                continue
            entries.append((plan.vertices, order, plan.to_wire(), None))
        entries.sort(key=lambda e: (e[0], e[1] is not None, e[1] or 0))
        return entries

    def absorb_memo(self, query: Query, memo: MemoTable) -> int:
        """Fold a finished query's per-query memo into this cache.

        Imports plan cells only (lower bounds are budget-relative scratch
        state); existing cells are left alone, matching the deterministic
        first-plan-wins conflict policy of :meth:`MemoTable.import_entries`.
        Returns the number of plans added.
        """
        if isinstance(memo, GlobalPlanCache):
            raise TypeError("absorb_memo expects a per-query (subset, order) memo")
        added = 0
        with self._lock:
            for key in memo.keys():
                subset, order = cast("tuple[int, Optional[int]]", key)
                entry = memo.peek(query, subset, order)
                if entry is None or not entry.has_plan:
                    continue
                plan = memo.plan_for_query(query, entry)
                if plan is None:
                    continue
                if self.peek(query, subset, order) is not None:
                    continue
                self.store_plan(query, subset, order, plan)
                added += 1
        return added
