"""Top-Down Partition Search (Algorithms 1 and 7).

This module is the paper's core contribution area: memoized top-down join
enumeration driven by a pluggable :class:`~repro.partition.PartitionStrategy`.
The plan space — left-deep vs. bushy, with or without cartesian products —
is controlled *only* by the partition strategy, exactly as in Section 3.1.

Three search modes are supported and freely combinable:

* **exhaustive** (Algorithm 1): plain memoized divide and conquer;
* **predicted-cost bounding** (Section 4.2): before exploring a partition,
  compare a logical-property lower bound against the best plan found so
  far for the *current* expression (upper bound starts at infinity per
  expression);
* **accumulated-cost bounding** (Algorithm 7): thread a cost budget down
  the recursion, abandon subtrees whose budget is exhausted, and record
  failed budgets in the memo as lower bounds.

Demand-driven interesting orders follow Algorithm 1's skeleton: the memo
is keyed by ``(expression, order)``, ordered plans can be obtained through
a sort enforcer on the unordered optimum or from order-producing operators
(sort-merge join), and — as in the paper's experiments — all benchmarks
run with the empty order.
"""

from __future__ import annotations

import enum
from typing import cast

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.cost.io_model import CostModel, JoinMethod, ProfiledCostModel
from repro.memo import MemoTable
from repro.obs.profile import (
    KERNEL_SEARCH,
    NULL_PROFILER,
    KernelProfiler,
    ProfiledMemoCalls,
    profiled_iter,
)
from repro.obs.registry import (
    PARTITIONS_PER_EXPRESSION,
    TIME_BETWEEN_JOINS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timing import clock
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition.base import PartitionStrategy, PlanSpace
from repro.plans.physical import INFINITY, Plan, plan_cost

__all__ = ["Bounding", "OptimizationError", "TopDownEnumerator"]


class Bounding(enum.Flag):
    """Branch-and-bound configuration (paper suffixes: A, P, AP)."""

    NONE = 0
    ACCUMULATED = enum.auto()
    PREDICTED = enum.auto()

    @classmethod
    def from_suffix(cls, suffix: str) -> "Bounding":
        """Parse the paper's algorithm-name suffix ('', 'A', 'P', 'AP')."""
        mapping = {
            "": cls.NONE,
            "A": cls.ACCUMULATED,
            "P": cls.PREDICTED,
            "AP": cls.ACCUMULATED | cls.PREDICTED,
        }
        try:
            return mapping[suffix.upper()]
        except KeyError:
            raise ValueError(f"unknown bounding suffix {suffix!r}") from None


class OptimizationError(RuntimeError):
    """Raised when no plan exists for the requested expression/space."""


class TopDownEnumerator:
    """Memoized top-down partition search over one query.

    Parameters
    ----------
    query:
        The (connected) join query to optimize.
    partition:
        The Partition function of Algorithm 1; determines the plan space.
    cost_model:
        Physical operators and costing; defaults to the shared I/O model.
    bounding:
        Branch-and-bound mode (see :class:`Bounding`).
    memo:
        Memo table; defaults to a fresh unbounded :class:`MemoTable`.
        Pass a capacity-limited table for the Section 5.1 experiments or a
        :class:`~repro.memo.GlobalPlanCache` for cross-query reuse.
    metrics:
        Counter sink; defaults to a fresh :class:`Metrics`.
    tracer:
        Span sink for the recursion (see :mod:`repro.obs.tracer`);
        defaults to the zero-overhead :data:`~repro.obs.tracer.NULL_TRACER`.
        One span is opened per memo-missed expression computation, so the
        span count of an exhaustive run equals the number of memoized
        expressions explored.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        the partitions-per-expression and time-between-joins histograms
        and the memo occupancy series.
    profiler:
        Optional :class:`~repro.obs.profile.KernelProfiler` attributing
        exclusive wall time and operation counts to named kernels
        (``enum.recurse``, the partition strategy's kernel, ``memo.table``,
        ``cost.eval``; see :mod:`repro.obs.profile`).  Defaults to the
        zero-overhead :data:`~repro.obs.profile.NULL_PROFILER`; when
        enabled, the memo and cost model are wrapped once here so the hot
        path pays no per-call branching beyond the wrappers themselves.
    """

    def __init__(
        self,
        query: Query,
        partition: PartitionStrategy,
        cost_model: CostModel | None = None,
        *,
        bounding: Bounding = Bounding.NONE,
        memo: MemoTable | None = None,
        metrics: Metrics | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        profiler: KernelProfiler | None = None,
    ) -> None:
        self.query = query
        self.partition = partition
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.bounding = bounding
        self.metrics = metrics if metrics is not None else Metrics()
        self.memo = memo if memo is not None else MemoTable(metrics=self.metrics)
        if self.memo.metrics is None:
            self.memo.metrics = self.metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled
        self.tracer.bind_metrics(self.metrics)
        self.partition.tracer = self.tracer
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._profiling = self.profiler.enabled
        self.partition.profiler = self.profiler
        # The hot-path views of the memo and cost model: identical to the
        # raw objects unless profiling, in which case per-call kernel
        # attribution is baked into wrappers once, here, instead of being
        # branched on in every recursion step.
        self._memo_hot: MemoTable
        self._cost_hot: CostModel
        if self._profiling:
            self._memo_hot = cast(
                MemoTable, ProfiledMemoCalls(self.memo, self.profiler)
            )
            self._cost_hot = ProfiledCostModel(self.cost_model, self.profiler)
            self.memo.attach_profiler(self.profiler)
        else:
            self._memo_hot = self.memo
            self._cost_hot = self.cost_model
        # Pre-resolved memo entry points: the memo view is fixed for the
        # enumerator's lifetime, so one bound-method load here replaces
        # two attribute hops on every recursion step (~31 % of wall is
        # this glue, per BENCH_profile.json).
        self._memo_get = self._memo_hot.get
        self._memo_plan_for = self._memo_hot.plan_for_query
        self._memo_store_plan = self._memo_hot.store_plan
        self._memo_store_lower_bound = self._memo_hot.store_lower_bound
        self.registry = registry
        self._h_partitions: Histogram | None = None
        self._h_join_gap: Histogram | None = None
        if registry is not None:
            self._h_partitions = registry.histogram(PARTITIONS_PER_EXPRESSION)
            self._h_join_gap = registry.histogram(TIME_BETWEEN_JOINS)
            self.memo.attach_registry(registry)
        self._last_join_at: float | None = None
        # Exclusive per-expression compute clock: only worth its clock()
        # calls when tracing is already paying for spans AND the memo's
        # eviction policy can refine its recompute weights with it.
        self._measure_compute = self._tracing and self.memo.wants_compute_seconds
        self._compute_stack: list[float] = []

    @property
    def space(self) -> PlanSpace:
        """The plan space searched (delegated to the partition strategy)."""
        return self.partition.space

    # -- public API -----------------------------------------------------------

    def optimize(
        self,
        order: int | None = None,
        *,
        initial_plan: Plan | None = None,
    ) -> Plan:
        """Return the optimal plan for the whole query.

        ``initial_plan`` optionally seeds the search with a known valid
        plan (Section 5.2's multi-phase optimization): with accumulated
        bounding its cost becomes the root budget; with predicted bounding
        it is the root's initial upper bound.  The result is never worse
        than ``initial_plan``.

        When profiling, the whole search runs under one ``enum.recurse``
        frame, so that kernel's exclusive time is exactly the recursion
        glue left over once partition/memo/cost frames are subtracted.
        """
        if self._profiling:
            self.profiler.enter(KERNEL_SEARCH)
        try:
            return self._optimize(order, initial_plan)
        finally:
            if self._profiling:
                self.profiler.exit()

    def _optimize(self, order: int | None, initial_plan: Plan | None) -> Plan:
        subset = self.query.graph.all_vertices
        if Bounding.ACCUMULATED in self.bounding:
            budgeted = self._get_best_budgeted(
                subset, order, plan_cost(initial_plan), seed=initial_plan
            )
            plan = budgeted if budgeted is not None else initial_plan
            if plan is None:
                raise OptimizationError("no plan found within the cost budget")
            return plan
        plan = self._get_best(subset, order, seed=initial_plan)
        if plan is None:
            raise OptimizationError("no plan exists for the query")
        return plan

    def compute_best(
        self,
        subset: int,
        order: int | None = None,
        *,
        budget: float | None = None,
    ) -> Plan | None:
        """Re-entrant subproblem solve over the (possibly pre-seeded) memo.

        The workhorse of the parallel subsystem: a worker repeatedly calls
        this for frontier subsets, the memo accumulating entries across
        calls (and across entries imported from other workers).  With
        ``budget`` the accumulated-cost search of Algorithm 7 is used and
        ``None`` means *no plan within budget* (a lower bound is recorded
        in the memo); without it the exhaustive/predicted search runs and
        ``None`` means no plan exists at all for the subset.
        """
        if subset == 0:
            raise OptimizationError("empty expression")
        if budget is not None:
            return self._get_best_budgeted(subset, order, budget)
        return self._get_best(subset, order, seed=None)

    def best_plan(self, subset: int, order: int | None = None) -> Plan:
        """Optimize an arbitrary sub-expression (used by tests/examples)."""
        if subset == 0:
            raise OptimizationError("empty expression")
        if (
            not self.space.allows_cartesian_products
            and not self.query.graph.is_connected(subset)
        ):
            raise OptimizationError(
                f"subset {subset:#x} is disconnected: no CP-free plan exists"
            )
        plan = self._get_best(subset, order, seed=None)
        if plan is None:
            raise OptimizationError(f"no plan for subset {subset:#x}")
        return plan

    # -- Algorithm 1 -----------------------------------------------------------

    def _get_best(
        self, subset: int, order: int | None, seed: Plan | None = None
    ) -> Plan | None:
        """GetBestPlan: memo lookup, then scan or join calculation."""
        metrics = self.metrics
        metrics.memo_lookups += 1
        query = self.query
        entry = self._memo_get(query, subset, order)
        if entry is not None and entry.has_plan:
            plan = self._memo_plan_for(query, entry)
            if plan is not None:
                metrics.memo_hits += 1
                if self._tracing:
                    self.tracer.memo_hit(subset, order)
                return plan
        is_scan = subset & (subset - 1) == 0
        compute_seconds: float | None = None
        if self._tracing:
            plan = None
            measure = self._measure_compute
            started = 0.0
            if measure:
                self._compute_stack.append(0.0)
                started = clock()
            self.tracer.begin(
                subset,
                order,
                "scan" if is_scan else "join",
                strategy=self.partition.name,
            )
            try:
                if is_scan:
                    plan = self._calc_best_scan(subset, order)
                else:
                    plan = self._calc_best_join(subset, order, seed)
            finally:
                self.tracer.end(cost=None if plan is None else plan.cost)
                if measure:
                    compute_seconds = self._finish_compute_span(started)
        elif is_scan:
            plan = self._calc_best_scan(subset, order)
        else:
            plan = self._calc_best_join(subset, order, seed)
        if plan is not None:
            self._memo_store_plan(
                query, subset, order, plan, compute_seconds=compute_seconds
            )
        return plan

    def _calc_best_scan(self, subset: int, order: int | None) -> Plan | None:
        """CalcBestScan: cheapest access path satisfying ``order``."""
        best: Plan | None = None
        if order is not None:
            unordered = self._get_best(subset, None)
            if unordered is not None:
                best = self._cost_hot.build_sort(self.query, unordered, order)
        for scan in self._cost_hot.scan_plans(self.query, subset, order):
            if scan.cost < plan_cost(best):
                best = scan
        return best

    def _calc_best_join(
        self, subset: int, order: int | None, seed: Plan | None
    ) -> Plan | None:
        """CalcBestJoin: partition, recurse, cost each join operator."""
        query = self.query
        cost_model = self._cost_hot
        metrics = self.metrics
        predicted = Bounding.PREDICTED in self.bounding
        metrics.note_expansion((subset, order))

        best = seed
        if order is not None:
            unordered = self._get_best(subset, None)
            if unordered is not None:
                sorted_plan = cost_model.build_sort(query, unordered, order)
                if sorted_plan.cost < plan_cost(best):
                    best = sorted_plan

        # Hot-loop locals: attribute and bound-method lookups hoisted out
        # of the per-candidate iteration (the `enum.recurse` glue is ~31 %
        # of wall on Table 2 topologies).
        tracing = self._tracing
        get_best = self._get_best
        methods = cost_model.JOIN_METHODS
        build_join = cost_model.build_join
        lower_bound = cost_model.lower_bound
        h_join_gap = self._h_join_gap
        note_join_costed = self._note_join_costed

        partitions = self.partition.partitions(query.graph, subset, metrics)
        if self._profiling:
            partitions = profiled_iter(
                self.profiler, self.partition.kernel, partitions, op="partitions"
            )
        partitions_seen = 0
        for left, right in partitions:
            partitions_seen += 1
            metrics.logical_joins_enumerated += 1
            if predicted:
                bound = lower_bound(query, left, right)
                if bound >= plan_cost(best):
                    metrics.predicted_prunes += 1
                    if tracing:
                        self.tracer.predicted_prune(left, right, bound)
                    continue
            # Every physical method takes unordered inputs, so the child
            # lookups are hoisted out of the method loop (with a memo this
            # is a wash; with a capacity-limited memo it avoids tripling
            # the recomputation).
            left_plan = None
            right_plan = None
            for method in methods:
                if order is not None:
                    produced = cost_model.join_output_order(
                        query, method, left, right
                    )
                    if produced != order:
                        continue
                if left_plan is None:
                    left_plan = get_best(left, None)
                    right_plan = get_best(right, None)
                if left_plan is None or right_plan is None:
                    break
                plan = build_join(query, method, left_plan, right_plan)
                metrics.join_operators_costed += 1
                if h_join_gap is not None:
                    note_join_costed()
                if plan.cost < plan_cost(best):
                    best = plan
        if self._h_partitions is not None:
            self._h_partitions.observe(partitions_seen)
        return best

    def _finish_compute_span(self, started: float) -> float:
        """Close one exclusive-compute measurement frame.

        Returns the time this expression spent computing *excluding* its
        recursive child computations (their inclusive times accumulated in
        this frame's stack slot), and charges the full inclusive time to
        the parent frame, if any.  Exclusive time is what recomputing the
        cell would cost when its children are still memoized — exactly the
        weight a cost-aware eviction policy needs.
        """
        inclusive = clock() - started
        child_total = self._compute_stack.pop()
        if self._compute_stack:
            self._compute_stack[-1] += inclusive
        return max(0.0, inclusive - child_total)

    def _note_join_costed(self) -> None:
        """Feed the time-between-joins histogram (microseconds).

        This is the paper's §3 optimality metric: TBNMC does at most
        linear work between successive join operators, so the gap
        distribution should stay flat as queries grow.

        The first join costed by an enumerator observes a zero gap, so the
        invariant ``histogram.count == join_operators_costed`` holds — and
        keeps holding when per-worker registries of a parallel run are
        merged (each worker contributes exactly one zero observation).
        """
        assert self._h_join_gap is not None  # caller guards on the histogram
        now = clock()
        if self._last_join_at is not None:
            self._h_join_gap.observe((now - self._last_join_at) * 1e6)
        else:
            self._h_join_gap.observe(0.0)
        self._last_join_at = now

    # -- Algorithm 7 (accumulated-cost bounding) ---------------------------------

    def _get_best_budgeted(
        self,
        subset: int,
        order: int | None,
        budget: float,
        seed: Plan | None = None,
    ) -> Plan | None:
        """GetBestPlan with a cost budget; returns None on failure.

        The memo stores either a (globally optimal) plan or the largest
        budget that already failed.  A stored optimal plan whose cost
        exceeds the budget proves no qualifying plan exists.
        """
        metrics = self.metrics
        metrics.memo_lookups += 1
        query = self.query
        entry = self._memo_get(query, subset, order)
        if entry is not None:
            if entry.has_plan:
                plan = self._memo_plan_for(query, entry)
                if plan is not None:
                    if plan.cost <= budget:
                        metrics.memo_hits += 1
                        if self._tracing:
                            self.tracer.memo_hit(subset, order)
                        return plan
                    metrics.memo_bound_hits += 1
                    if self._tracing:
                        self.tracer.memo_bound_hit(subset, order)
                    return None
            elif entry.lower_bound is not None and budget <= entry.lower_bound:
                metrics.memo_bound_hits += 1
                if self._tracing:
                    self.tracer.memo_bound_hit(subset, order)
                return None
        is_scan = subset & (subset - 1) == 0
        compute_seconds: float | None = None
        if self._tracing:
            plan = None
            measure = self._measure_compute
            started = 0.0
            if measure:
                self._compute_stack.append(0.0)
                started = clock()
            self.tracer.begin(
                subset,
                order,
                "scan" if is_scan else "join",
                strategy=self.partition.name,
                budget=None if budget >= INFINITY else budget,
            )
            try:
                if is_scan:
                    plan = self._calc_best_scan_budgeted(subset, order, budget)
                else:
                    plan = self._calc_best_join_budgeted(subset, order, budget, seed)
            finally:
                self.tracer.end(
                    cost=None if plan is None else plan.cost,
                    failed=plan is None,
                )
                if measure:
                    compute_seconds = self._finish_compute_span(started)
        elif is_scan:
            plan = self._calc_best_scan_budgeted(subset, order, budget)
        else:
            plan = self._calc_best_join_budgeted(subset, order, budget, seed)
        if plan is None:
            metrics.budget_failures += 1
            if budget < INFINITY:
                self._memo_store_lower_bound(
                    query, subset, order, budget,
                    compute_seconds=compute_seconds,
                )
        else:
            self._memo_store_plan(
                query, subset, order, plan, compute_seconds=compute_seconds
            )
        return plan

    def _calc_best_scan_budgeted(
        self, subset: int, order: int | None, budget: float
    ) -> Plan | None:
        best: Plan | None = None
        if order is not None:
            sort_cost = self._cost_hot.sort_cost(self.query, subset)
            unordered = self._get_best_budgeted(subset, None, budget - sort_cost)
            if unordered is not None:
                best = self._cost_hot.build_sort(self.query, unordered, order)
        for scan in self._cost_hot.scan_plans(self.query, subset, order):
            if scan.cost < plan_cost(best) and scan.cost <= budget:
                best = scan
        return best

    def _calc_best_join_budgeted(
        self, subset: int, order: int | None, budget: float, seed: Plan | None
    ) -> Plan | None:
        query = self.query
        cost_model = self._cost_hot
        metrics = self.metrics
        predicted = Bounding.PREDICTED in self.bounding
        metrics.note_expansion((subset, order))

        best: Plan | None = None
        if seed is not None and seed.cost <= budget:
            best = seed
        if order is not None:
            sort_cost = cost_model.sort_cost(query, subset)
            unordered = self._get_best_budgeted(subset, None, budget - sort_cost)
            if unordered is not None:
                sorted_plan = cost_model.build_sort(query, unordered, order)
                if sorted_plan.cost < plan_cost(best):
                    best = sorted_plan

        # Hot-loop locals, as in `_calc_best_join`.
        tracing = self._tracing
        get_best_budgeted = self._get_best_budgeted
        join_methods = cost_model.JOIN_METHODS
        build_join = cost_model.build_join
        lower_bound = cost_model.lower_bound
        operator_cost_of = cost_model.operator_cost
        h_join_gap = self._h_join_gap
        note_join_costed = self._note_join_costed

        partitions = self.partition.partitions(query.graph, subset, metrics)
        if self._profiling:
            partitions = profiled_iter(
                self.profiler, self.partition.kernel, partitions, op="partitions"
            )
        partitions_seen = 0
        for left, right in partitions:
            partitions_seen += 1
            metrics.logical_joins_enumerated += 1
            cap = min(budget, plan_cost(best))
            if predicted:
                # Paper Section 4.2: explore only if the lower bound does
                # not exceed min(B, Cost(BestPlan)).
                bound = lower_bound(query, left, right)
                if bound > cap:
                    metrics.predicted_prunes += 1
                    if tracing:
                        self.tracer.predicted_prune(left, right, bound)
                    continue
            methods: list[tuple[float, JoinMethod]] = []
            for method in join_methods:
                if order is not None:
                    produced = cost_model.join_output_order(
                        query, method, left, right
                    )
                    if produced != order:
                        continue
                methods.append(
                    (operator_cost_of(query, method, left, right), method)
                )
            if not methods:
                continue
            # Algorithm 7 budgets each operator separately; because every
            # method takes unordered inputs and children return *optimal*
            # plans, fetching the children once under the cheapest
            # operator's budget is equivalent (a child that fails the
            # loosest budget fails them all) and avoids re-deriving the
            # children per method when the memo cannot absorb it.
            cheapest = min(cost for cost, _ in methods)
            remaining = cap - cheapest
            if remaining < 0:
                continue
            left_plan = get_best_budgeted(left, None, remaining)
            if left_plan is None:
                continue
            remaining -= left_plan.cost
            right_plan = get_best_budgeted(right, None, remaining)
            if right_plan is None:
                continue
            for operator_cost, method in methods:
                total = left_plan.cost + right_plan.cost + operator_cost
                metrics.join_operators_costed += 1
                if h_join_gap is not None:
                    note_join_costed()
                if total <= min(budget, plan_cost(best)) and total < plan_cost(best):
                    best = build_join(
                        query, method, left_plan, right_plan
                    )
        if self._h_partitions is not None:
            self._h_partitions.observe(partitions_seen)
        return best
