"""Top-Down Partition Search (Algorithms 1 and 7).

This module is the paper's core contribution area: memoized top-down join
enumeration driven by a pluggable :class:`~repro.partition.PartitionStrategy`.
The plan space — left-deep vs. bushy, with or without cartesian products —
is controlled *only* by the partition strategy, exactly as in Section 3.1.

Three search modes are supported and freely combinable:

* **exhaustive** (Algorithm 1): plain memoized divide and conquer;
* **predicted-cost bounding** (Section 4.2): before exploring a partition,
  compare a logical-property lower bound against the best plan found so
  far for the *current* expression (upper bound starts at infinity per
  expression);
* **accumulated-cost bounding** (Algorithm 7): thread a cost budget down
  the recursion, abandon subtrees whose budget is exhausted, and record
  failed budgets in the memo as lower bounds.

Demand-driven interesting orders follow Algorithm 1's skeleton: the memo
is keyed by ``(expression, order)``, ordered plans can be obtained through
a sort enforcer on the unordered optimum or from order-producing operators
(sort-merge join), and — as in the paper's experiments — all benchmarks
run with the empty order.
"""

from __future__ import annotations

import enum
import math
from typing import Sequence, cast

from repro.analysis.metrics import Metrics
from repro.anytime import (
    AnytimeReport,
    Budget,
    BudgetClock,
    BudgetExhausted,
    gap_bound_from,
    greedy_plan,
    kbest_join_plans,
    ranked_scan_plans,
    static_lower_bound,
)
from repro.catalog.query import Query
from repro.cost.io_model import CostModel, JoinMethod, ProfiledCostModel
from repro.memo import MemoTable
from repro.obs.profile import (
    KERNEL_SEARCH,
    NULL_PROFILER,
    KernelProfiler,
    ProfiledMemoCalls,
    profiled_iter,
)
from repro.obs.registry import (
    ANYTIME_GAP_BOUND,
    ANYTIME_NODES_SPENT,
    PARTITIONS_PER_EXPRESSION,
    TIME_BETWEEN_JOINS,
    TOPK_RANKED_DEPTH,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timing import clock
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition.base import PartitionStrategy, PlanSpace
from repro.plans.physical import INFINITY, Plan, plan_cost

__all__ = ["Bounding", "OptimizationError", "TopDownEnumerator"]

#: Relative headroom on the budgets Algorithm 7 threads into child
#: lookups.  ``remaining = cap - cheapest - left.cost`` accumulates one
#: rounding error per subtraction, so a candidate whose exact total
#: qualifies can see its child fail the budget by an ulp — and a
#: different cost-tied plan wins than in the unbudgeted search, breaking
#: the champion/top-k bit-identity the ``topk-soundness`` invariant
#: pins.  The headroom only widens child *exploration*; the accept test
#: compares exact totals in ``build_join``'s addition order, so any
#: candidate the slack admits is still rejected unless genuinely better.
BUDGET_HEADROOM = 1.0 + 1e-12


class Bounding(enum.Flag):
    """Branch-and-bound configuration (paper suffixes: A, P, AP)."""

    NONE = 0
    ACCUMULATED = enum.auto()
    PREDICTED = enum.auto()

    @classmethod
    def from_suffix(cls, suffix: str) -> "Bounding":
        """Parse the paper's algorithm-name suffix ('', 'A', 'P', 'AP')."""
        mapping = {
            "": cls.NONE,
            "A": cls.ACCUMULATED,
            "P": cls.PREDICTED,
            "AP": cls.ACCUMULATED | cls.PREDICTED,
        }
        try:
            return mapping[suffix.upper()]
        except KeyError:
            raise ValueError(f"unknown bounding suffix {suffix!r}") from None


class OptimizationError(RuntimeError):
    """Raised when no plan exists for the requested expression/space."""


class TopDownEnumerator:
    """Memoized top-down partition search over one query.

    Parameters
    ----------
    query:
        The (connected) join query to optimize.
    partition:
        The Partition function of Algorithm 1; determines the plan space.
    cost_model:
        Physical operators and costing; defaults to the shared I/O model.
    bounding:
        Branch-and-bound mode (see :class:`Bounding`).
    memo:
        Memo table; defaults to a fresh unbounded :class:`MemoTable`.
        Pass a capacity-limited table for the Section 5.1 experiments or a
        :class:`~repro.memo.GlobalPlanCache` for cross-query reuse.
    metrics:
        Counter sink; defaults to a fresh :class:`Metrics`.
    tracer:
        Span sink for the recursion (see :mod:`repro.obs.tracer`);
        defaults to the zero-overhead :data:`~repro.obs.tracer.NULL_TRACER`.
        One span is opened per memo-missed expression computation, so the
        span count of an exhaustive run equals the number of memoized
        expressions explored.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        the partitions-per-expression and time-between-joins histograms
        and the memo occupancy series.
    profiler:
        Optional :class:`~repro.obs.profile.KernelProfiler` attributing
        exclusive wall time and operation counts to named kernels
        (``enum.recurse``, the partition strategy's kernel, ``memo.table``,
        ``cost.eval``; see :mod:`repro.obs.profile`).  Defaults to the
        zero-overhead :data:`~repro.obs.profile.NULL_PROFILER`; when
        enabled, the memo and cost model are wrapped once here so the hot
        path pays no per-call branching beyond the wrappers themselves.
    """

    def __init__(
        self,
        query: Query,
        partition: PartitionStrategy,
        cost_model: CostModel | None = None,
        *,
        bounding: Bounding = Bounding.NONE,
        memo: MemoTable | None = None,
        metrics: Metrics | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        profiler: KernelProfiler | None = None,
        default_budget: Budget | None = None,
        default_topk: int | None = None,
    ) -> None:
        self.query = query
        self.partition = partition
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.bounding = bounding
        self.metrics = metrics if metrics is not None else Metrics()
        self.memo = memo if memo is not None else MemoTable(metrics=self.metrics)
        if self.memo.metrics is None:
            self.memo.metrics = self.metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled
        self.tracer.bind_metrics(self.metrics)
        self.partition.tracer = self.tracer
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._profiling = self.profiler.enabled
        self.partition.profiler = self.profiler
        # The hot-path views of the memo and cost model: identical to the
        # raw objects unless profiling, in which case per-call kernel
        # attribution is baked into wrappers once, here, instead of being
        # branched on in every recursion step.
        self._memo_hot: MemoTable
        self._cost_hot: CostModel
        if self._profiling:
            self._memo_hot = cast(
                MemoTable, ProfiledMemoCalls(self.memo, self.profiler)
            )
            self._cost_hot = ProfiledCostModel(self.cost_model, self.profiler)
            self.memo.attach_profiler(self.profiler)
        else:
            self._memo_hot = self.memo
            self._cost_hot = self.cost_model
        # Pre-resolved memo entry points: the memo view is fixed for the
        # enumerator's lifetime, so one bound-method load here replaces
        # two attribute hops on every recursion step (~31 % of wall is
        # this glue, per BENCH_profile.json).
        self._memo_get = self._memo_hot.get
        self._memo_plan_for = self._memo_hot.plan_for_query
        self._memo_store_plan = self._memo_hot.store_plan
        self._memo_store_lower_bound = self._memo_hot.store_lower_bound
        self.registry = registry
        self._h_partitions: Histogram | None = None
        self._h_join_gap: Histogram | None = None
        self._h_gap_bound: Histogram | None = None
        self._h_anytime_nodes: Histogram | None = None
        self._h_topk_depth: Histogram | None = None
        if registry is not None:
            self._h_partitions = registry.histogram(PARTITIONS_PER_EXPRESSION)
            self._h_join_gap = registry.histogram(TIME_BETWEEN_JOINS)
            self._h_gap_bound = registry.histogram(ANYTIME_GAP_BOUND)
            self._h_anytime_nodes = registry.histogram(ANYTIME_NODES_SPENT)
            self._h_topk_depth = registry.histogram(TOPK_RANKED_DEPTH)
            self.memo.attach_registry(registry)
        # Anytime state: a live budget clock charged one node per
        # memo-missed expression, plus the root-incumbent watch that keeps
        # the best full-query plan reachable when the clock interrupts the
        # recursion mid-flight.  `_root_watch` is -1 ("matches no subset")
        # whenever no anytime run is active, so the champion loops pay one
        # integer compare and nothing else.
        self.default_budget = default_budget
        self.default_topk = default_topk
        self._budget_clock: BudgetClock | None = None
        self._root_watch = -1
        self._root_order: int | None = None
        self._anytime_best: Plan | None = None
        #: Gap-bound report of the most recent budgeted :meth:`optimize`
        #: (``None`` after an unbudgeted run).
        self.anytime: AnytimeReport | None = None
        self._last_join_at: float | None = None
        # Exclusive per-expression compute clock: only worth its clock()
        # calls when tracing is already paying for spans AND the memo's
        # eviction policy can refine its recompute weights with it.
        self._measure_compute = self._tracing and self.memo.wants_compute_seconds
        self._compute_stack: list[float] = []

    @property
    def space(self) -> PlanSpace:
        """The plan space searched (delegated to the partition strategy)."""
        return self.partition.space

    # -- public API -----------------------------------------------------------

    def optimize(
        self,
        order: int | None = None,
        *,
        initial_plan: Plan | None = None,
        budget: Budget | BudgetClock | None = None,
    ) -> Plan:
        """Return the optimal plan for the whole query.

        ``initial_plan`` optionally seeds the search with a known valid
        plan (Section 5.2's multi-phase optimization): with accumulated
        bounding its cost becomes the root budget; with predicted bounding
        it is the root's initial upper bound.  The result is never worse
        than ``initial_plan``.

        ``budget`` switches on anytime mode (``docs/anytime.md``): the
        search charges one node per memo-missed expression against the
        budget's clock and, when interrupted, returns the best full-query
        plan found so far (never worse than a zero-node greedy seed), with
        :attr:`anytime` describing the certified optimality-gap bound.  A
        :class:`~repro.anytime.BudgetClock` may be passed directly to
        share one running budget across several phases.  An unlimited
        ``Budget()`` takes exactly the plain search path and reports a
        completed, gap-zero outcome.  Falls back to the constructor's
        ``default_budget`` (the registry's ``?budget`` suffix) when
        omitted.

        When profiling, the whole search runs under one ``enum.recurse``
        frame, so that kernel's exclusive time is exactly the recursion
        glue left over once partition/memo/cost frames are subtracted.
        """
        if budget is None:
            budget = self.default_budget
        if self._profiling:
            self.profiler.enter(KERNEL_SEARCH)
        try:
            if budget is None:
                self.anytime = None
                return self._optimize(order, initial_plan)
            budget_clock = (
                budget
                if isinstance(budget, BudgetClock)
                else BudgetClock(budget)
            )
            if budget_clock.unconstrained:
                plan = self._optimize(order, initial_plan)
                self.anytime = AnytimeReport(
                    plan_cost=plan.cost,
                    lower_bound=plan.cost,
                    gap_bound=0.0,
                    nodes_spent=0,
                    completed=True,
                    exhausted=False,
                )
                return plan
            return self._optimize_anytime(order, initial_plan, budget_clock)
        finally:
            if self._profiling:
                self.profiler.exit()

    def _optimize_anytime(
        self,
        order: int | None,
        initial_plan: Plan | None,
        budget_clock: BudgetClock,
    ) -> Plan:
        """Budgeted whole-query search: best-so-far plan plus a gap bound.

        The incumbent starts at ``initial_plan`` or a zero-node greedy
        seed, so *any* budget — including zero nodes — yields a valid
        plan.  On interruption the certified floor is the tighter of the
        static sum-of-cheapest-scans bound and the root's accumulated
        memo lower bound (Algorithm 7 stores failed budgets as floors).
        """
        query = self.query
        subset = query.graph.all_vertices
        seed = initial_plan
        if seed is None:
            seed = greedy_plan(query, self.cost_model, self.space)
            if order is not None:
                seed = self.cost_model.build_sort(query, seed, order)
        start_nodes = budget_clock.nodes_spent
        self._budget_clock = budget_clock
        self._root_watch = subset
        self._root_order = order
        self._anytime_best = seed
        interrupted = False
        try:
            plan = self._optimize(order, seed)
        except BudgetExhausted:
            interrupted = True
            incumbent = self._anytime_best
            assert incumbent is not None  # seeded above, only ever improved
            plan = incumbent
        finally:
            self._budget_clock = None
            self._root_watch = -1
            self._root_order = None
            self._anytime_best = None
        nodes = budget_clock.nodes_spent - start_nodes
        metrics = self.metrics
        metrics.anytime_nodes_spent += nodes
        if interrupted:
            metrics.anytime_interrupts += 1
            floor = static_lower_bound(query, self.cost_model)
            entry = self.memo.get(query, subset, order)
            if entry is not None and entry.lower_bound is not None:
                floor = max(floor, entry.lower_bound)
            # The incumbent is itself an upper bound on the optimum, so a
            # floor above its cost would be contradictory; clamping keeps
            # the bound sound (gap 0 means "provably optimal").
            floor = min(floor, plan.cost)
            report = AnytimeReport(
                plan_cost=plan.cost,
                lower_bound=floor,
                gap_bound=gap_bound_from(plan.cost, floor),
                nodes_spent=nodes,
                completed=False,
                exhausted=True,
            )
        else:
            report = AnytimeReport(
                plan_cost=plan.cost,
                lower_bound=plan.cost,
                gap_bound=0.0,
                nodes_spent=nodes,
                completed=True,
                exhausted=False,
            )
        self.anytime = report
        if self._h_anytime_nodes is not None:
            self._h_anytime_nodes.observe(nodes)
        if self._h_gap_bound is not None and not math.isinf(report.gap_bound):
            self._h_gap_bound.observe(report.gap_bound)
        return plan

    def _optimize(self, order: int | None, initial_plan: Plan | None) -> Plan:
        subset = self.query.graph.all_vertices
        if Bounding.ACCUMULATED in self.bounding:
            budgeted = self._get_best_budgeted(
                subset, order, plan_cost(initial_plan), seed=initial_plan
            )
            plan = budgeted if budgeted is not None else initial_plan
            if plan is None:
                raise OptimizationError("no plan found within the cost budget")
            return plan
        plan = self._get_best(subset, order, seed=initial_plan)
        if plan is None:
            raise OptimizationError("no plan exists for the query")
        return plan

    def compute_best(
        self,
        subset: int,
        order: int | None = None,
        *,
        budget: float | None = None,
    ) -> Plan | None:
        """Re-entrant subproblem solve over the (possibly pre-seeded) memo.

        The workhorse of the parallel subsystem: a worker repeatedly calls
        this for frontier subsets, the memo accumulating entries across
        calls (and across entries imported from other workers).  With
        ``budget`` the accumulated-cost search of Algorithm 7 is used and
        ``None`` means *no plan within budget* (a lower bound is recorded
        in the memo); without it the exhaustive/predicted search runs and
        ``None`` means no plan exists at all for the subset.
        """
        if subset == 0:
            raise OptimizationError("empty expression")
        if budget is not None:
            return self._get_best_budgeted(subset, order, budget)
        return self._get_best(subset, order, seed=None)

    def best_plan(self, subset: int, order: int | None = None) -> Plan:
        """Optimize an arbitrary sub-expression (used by tests/examples)."""
        if subset == 0:
            raise OptimizationError("empty expression")
        if (
            not self.space.allows_cartesian_products
            and not self.query.graph.is_connected(subset)
        ):
            raise OptimizationError(
                f"subset {subset:#x} is disconnected: no CP-free plan exists"
            )
        plan = self._get_best(subset, order, seed=None)
        if plan is None:
            raise OptimizationError(f"no plan for subset {subset:#x}")
        return plan

    # -- ranked (top-k) enumeration --------------------------------------------

    def optimize_topk(
        self, k: int | None = None, order: int | None = None
    ) -> tuple[Plan, ...]:
        """The ``k`` cheapest structurally distinct plans, best first.

        Rank 0 is bit-identical to :meth:`optimize`'s champion (the
        ``topk-soundness`` invariant); costs are monotone nondecreasing;
        fewer than ``k`` plans are returned only when the space holds
        fewer distinct plans.  Ranked lists are memoized per expression
        (:meth:`~repro.memo.MemoTable.store_ranked`, charged ``k``×
        footprint against a bounded memo's capacity) and composed lazily
        at each candidate scan (``docs/anytime.md``).  ``k`` falls back
        to the constructor's ``default_topk`` (the registry's ``^k``
        suffix).  Interesting orders are not ranked: only the paper's
        empty-order pipeline is supported.
        """
        if k is None:
            k = self.default_topk if self.default_topk is not None else 1
        if k < 1:
            raise ValueError(f"top-k rank must be >= 1, got {k}")
        if order is not None:
            raise OptimizationError(
                "ranked enumeration supports the empty order only"
            )
        if self._profiling:
            self.profiler.enter(KERNEL_SEARCH)
        try:
            ranked = self._topk_for(self.query.graph.all_vertices, k)
        finally:
            if self._profiling:
                self.profiler.exit()
        if not ranked:
            raise OptimizationError("no plan exists for the query")
        if self._h_topk_depth is not None:
            self._h_topk_depth.observe(len(ranked))
        return ranked

    def _topk_for(self, subset: int, k: int) -> tuple[Plan, ...]:
        """The ranked cell for one expression (memoized; may be shorter
        than ``k`` when the space holds fewer distinct plans)."""
        query = self.query
        memo = self.memo
        entry = memo.get(query, subset, None)
        if entry is not None:
            cached = memo.ranked_for_query(query, entry, k)
            if cached is not None:
                return tuple(cached[:k])
        metrics = self.metrics
        if subset & (subset - 1) == 0:
            ranked = ranked_scan_plans(
                list(self._cost_hot.scan_plans(query, subset, None)), k
            )
        else:
            cost_model = self._cost_hot
            methods = cost_model.JOIN_METHODS
            pairs = list(
                self.partition.partitions(query.graph, subset, metrics)
            )
            rows = self._topk_operator_cost_rows(pairs)
            candidates: list[
                tuple[float, JoinMethod, Sequence[Plan], Sequence[Plan]]
            ] = []
            for pair_index, (left, right) in enumerate(pairs):
                left_ranked = self._topk_for(left, k)
                if not left_ranked:
                    continue
                right_ranked = self._topk_for(right, k)
                if not right_ranked:
                    continue
                row = rows[pair_index]
                for method_index, method in enumerate(methods):
                    candidates.append(
                        (row[method_index], method, left_ranked, right_ranked)
                    )
            metrics.topk_candidates_ranked += len(candidates)

            def build(method: JoinMethod, left: Plan, right: Plan) -> Plan:
                return cost_model.build_join(query, method, left, right)

            ranked = kbest_join_plans(k, candidates, build)
        if ranked:
            memo.store_ranked(query, subset, None, ranked, k)
            metrics.topk_expressions_ranked += 1
        return ranked

    def _topk_operator_cost_rows(
        self, pairs: Sequence[tuple[int, int]]
    ) -> Sequence[Sequence[float]]:
        """Per-pair operator costs, one row per pair indexed by method.

        The fast path overrides this with one batched kernel call; rows
        must follow ``JOIN_METHODS`` order so the candidate scan keeps the
        champion loop's tie-breaking.
        """
        query = self.query
        cost_model = self._cost_hot
        operator_cost = cost_model.operator_cost
        methods = cost_model.JOIN_METHODS
        return [
            [operator_cost(query, method, left, right) for method in methods]
            for left, right in pairs
        ]

    # -- Algorithm 1 -----------------------------------------------------------

    def _get_best(
        self, subset: int, order: int | None, seed: Plan | None = None
    ) -> Plan | None:
        """GetBestPlan: memo lookup, then scan or join calculation."""
        metrics = self.metrics
        metrics.memo_lookups += 1
        query = self.query
        entry = self._memo_get(query, subset, order)
        if entry is not None and entry.has_plan:
            plan = self._memo_plan_for(query, entry)
            if plan is not None:
                metrics.memo_hits += 1
                if self._tracing:
                    self.tracer.memo_hit(subset, order)
                return plan
        budget_clock = self._budget_clock
        if budget_clock is not None:
            budget_clock.spend_node()
        is_scan = subset & (subset - 1) == 0
        compute_seconds: float | None = None
        if self._tracing:
            plan = None
            measure = self._measure_compute
            started = 0.0
            if measure:
                self._compute_stack.append(0.0)
                started = clock()
            self.tracer.begin(
                subset,
                order,
                "scan" if is_scan else "join",
                strategy=self.partition.name,
            )
            try:
                if is_scan:
                    plan = self._calc_best_scan(subset, order)
                else:
                    plan = self._calc_best_join(subset, order, seed)
            finally:
                self.tracer.end(cost=None if plan is None else plan.cost)
                if measure:
                    compute_seconds = self._finish_compute_span(started)
        elif is_scan:
            plan = self._calc_best_scan(subset, order)
        else:
            plan = self._calc_best_join(subset, order, seed)
        if plan is not None:
            self._memo_store_plan(
                query, subset, order, plan, compute_seconds=compute_seconds
            )
        return plan

    def _calc_best_scan(self, subset: int, order: int | None) -> Plan | None:
        """CalcBestScan: cheapest access path satisfying ``order``."""
        best: Plan | None = None
        if order is not None:
            unordered = self._get_best(subset, None)
            if unordered is not None:
                best = self._cost_hot.build_sort(self.query, unordered, order)
        for scan in self._cost_hot.scan_plans(self.query, subset, order):
            if scan.cost < plan_cost(best):
                best = scan
        return best

    def _calc_best_join(
        self, subset: int, order: int | None, seed: Plan | None
    ) -> Plan | None:
        """CalcBestJoin: partition, recurse, cost each join operator."""
        query = self.query
        cost_model = self._cost_hot
        metrics = self.metrics
        predicted = Bounding.PREDICTED in self.bounding
        metrics.note_expansion((subset, order))
        # Root-incumbent watch for anytime mode: publishing improvements as
        # they are found keeps the best full-query plan reachable when the
        # budget clock interrupts the recursion (one compare when idle).
        watching = subset == self._root_watch and order == self._root_order

        best = seed
        if order is not None:
            unordered = self._get_best(subset, None)
            if unordered is not None:
                sorted_plan = cost_model.build_sort(query, unordered, order)
                if sorted_plan.cost < plan_cost(best):
                    best = sorted_plan
                    if watching:
                        self._anytime_best = best

        # Hot-loop locals: attribute and bound-method lookups hoisted out
        # of the per-candidate iteration (the `enum.recurse` glue is ~31 %
        # of wall on Table 2 topologies).
        tracing = self._tracing
        get_best = self._get_best
        methods = cost_model.JOIN_METHODS
        build_join = cost_model.build_join
        lower_bound = cost_model.lower_bound
        h_join_gap = self._h_join_gap
        note_join_costed = self._note_join_costed

        partitions = self.partition.partitions(query.graph, subset, metrics)
        if self._profiling:
            partitions = profiled_iter(
                self.profiler, self.partition.kernel, partitions, op="partitions"
            )
        partitions_seen = 0
        for left, right in partitions:
            partitions_seen += 1
            metrics.logical_joins_enumerated += 1
            if predicted:
                bound = lower_bound(query, left, right)
                if bound >= plan_cost(best):
                    metrics.predicted_prunes += 1
                    if tracing:
                        self.tracer.predicted_prune(left, right, bound)
                    continue
            # Every physical method takes unordered inputs, so the child
            # lookups are hoisted out of the method loop (with a memo this
            # is a wash; with a capacity-limited memo it avoids tripling
            # the recomputation).
            left_plan = None
            right_plan = None
            for method in methods:
                if order is not None:
                    produced = cost_model.join_output_order(
                        query, method, left, right
                    )
                    if produced != order:
                        continue
                if left_plan is None:
                    left_plan = get_best(left, None)
                    right_plan = get_best(right, None)
                if left_plan is None or right_plan is None:
                    break
                plan = build_join(query, method, left_plan, right_plan)
                metrics.join_operators_costed += 1
                if h_join_gap is not None:
                    note_join_costed()
                if plan.cost < plan_cost(best):
                    best = plan
                    if watching:
                        self._anytime_best = best
        if self._h_partitions is not None:
            self._h_partitions.observe(partitions_seen)
        return best

    def _finish_compute_span(self, started: float) -> float:
        """Close one exclusive-compute measurement frame.

        Returns the time this expression spent computing *excluding* its
        recursive child computations (their inclusive times accumulated in
        this frame's stack slot), and charges the full inclusive time to
        the parent frame, if any.  Exclusive time is what recomputing the
        cell would cost when its children are still memoized — exactly the
        weight a cost-aware eviction policy needs.
        """
        inclusive = clock() - started
        child_total = self._compute_stack.pop()
        if self._compute_stack:
            self._compute_stack[-1] += inclusive
        return max(0.0, inclusive - child_total)

    def _note_join_costed(self) -> None:
        """Feed the time-between-joins histogram (microseconds).

        This is the paper's §3 optimality metric: TBNMC does at most
        linear work between successive join operators, so the gap
        distribution should stay flat as queries grow.

        The first join costed by an enumerator observes a zero gap, so the
        invariant ``histogram.count == join_operators_costed`` holds — and
        keeps holding when per-worker registries of a parallel run are
        merged (each worker contributes exactly one zero observation).
        """
        assert self._h_join_gap is not None  # caller guards on the histogram
        now = clock()
        if self._last_join_at is not None:
            self._h_join_gap.observe((now - self._last_join_at) * 1e6)
        else:
            self._h_join_gap.observe(0.0)
        self._last_join_at = now

    # -- Algorithm 7 (accumulated-cost bounding) ---------------------------------

    def _get_best_budgeted(
        self,
        subset: int,
        order: int | None,
        budget: float,
        seed: Plan | None = None,
    ) -> Plan | None:
        """GetBestPlan with a cost budget; returns None on failure.

        The memo stores either a (globally optimal) plan or the largest
        budget that already failed.  A stored optimal plan whose cost
        exceeds the budget proves no qualifying plan exists.
        """
        metrics = self.metrics
        metrics.memo_lookups += 1
        query = self.query
        entry = self._memo_get(query, subset, order)
        if entry is not None:
            if entry.has_plan:
                plan = self._memo_plan_for(query, entry)
                if plan is not None:
                    if plan.cost <= budget:
                        metrics.memo_hits += 1
                        if self._tracing:
                            self.tracer.memo_hit(subset, order)
                        return plan
                    metrics.memo_bound_hits += 1
                    if self._tracing:
                        self.tracer.memo_bound_hit(subset, order)
                    return None
            elif entry.lower_bound is not None and budget <= entry.lower_bound:
                metrics.memo_bound_hits += 1
                if self._tracing:
                    self.tracer.memo_bound_hit(subset, order)
                return None
        budget_clock = self._budget_clock
        if budget_clock is not None:
            budget_clock.spend_node()
        is_scan = subset & (subset - 1) == 0
        compute_seconds: float | None = None
        if self._tracing:
            plan = None
            measure = self._measure_compute
            started = 0.0
            if measure:
                self._compute_stack.append(0.0)
                started = clock()
            self.tracer.begin(
                subset,
                order,
                "scan" if is_scan else "join",
                strategy=self.partition.name,
                budget=None if budget >= INFINITY else budget,
            )
            try:
                if is_scan:
                    plan = self._calc_best_scan_budgeted(subset, order, budget)
                else:
                    plan = self._calc_best_join_budgeted(subset, order, budget, seed)
            finally:
                self.tracer.end(
                    cost=None if plan is None else plan.cost,
                    failed=plan is None,
                )
                if measure:
                    compute_seconds = self._finish_compute_span(started)
        elif is_scan:
            plan = self._calc_best_scan_budgeted(subset, order, budget)
        else:
            plan = self._calc_best_join_budgeted(subset, order, budget, seed)
        if plan is None:
            metrics.budget_failures += 1
            if budget < INFINITY:
                self._memo_store_lower_bound(
                    query, subset, order, budget,
                    compute_seconds=compute_seconds,
                )
        else:
            self._memo_store_plan(
                query, subset, order, plan, compute_seconds=compute_seconds
            )
        return plan

    def _calc_best_scan_budgeted(
        self, subset: int, order: int | None, budget: float
    ) -> Plan | None:
        best: Plan | None = None
        if order is not None:
            sort_cost = self._cost_hot.sort_cost(self.query, subset)
            unordered = self._get_best_budgeted(subset, None, budget - sort_cost)
            if unordered is not None:
                best = self._cost_hot.build_sort(self.query, unordered, order)
        for scan in self._cost_hot.scan_plans(self.query, subset, order):
            if scan.cost < plan_cost(best) and scan.cost <= budget:
                best = scan
        return best

    def _calc_best_join_budgeted(
        self, subset: int, order: int | None, budget: float, seed: Plan | None
    ) -> Plan | None:
        query = self.query
        cost_model = self._cost_hot
        metrics = self.metrics
        predicted = Bounding.PREDICTED in self.bounding
        metrics.note_expansion((subset, order))
        # Root-incumbent watch, as in `_calc_best_join`.
        watching = subset == self._root_watch and order == self._root_order

        best: Plan | None = None
        if seed is not None and seed.cost <= budget:
            best = seed
        if order is not None:
            sort_cost = cost_model.sort_cost(query, subset)
            unordered = self._get_best_budgeted(subset, None, budget - sort_cost)
            if unordered is not None:
                sorted_plan = cost_model.build_sort(query, unordered, order)
                if sorted_plan.cost < plan_cost(best):
                    best = sorted_plan
                    if watching:
                        self._anytime_best = best

        # Hot-loop locals, as in `_calc_best_join`.
        tracing = self._tracing
        get_best_budgeted = self._get_best_budgeted
        join_methods = cost_model.JOIN_METHODS
        build_join = cost_model.build_join
        lower_bound = cost_model.lower_bound
        operator_cost_of = cost_model.operator_cost
        h_join_gap = self._h_join_gap
        note_join_costed = self._note_join_costed

        partitions = self.partition.partitions(query.graph, subset, metrics)
        if self._profiling:
            partitions = profiled_iter(
                self.profiler, self.partition.kernel, partitions, op="partitions"
            )
        partitions_seen = 0
        for left, right in partitions:
            partitions_seen += 1
            metrics.logical_joins_enumerated += 1
            cap = min(budget, plan_cost(best))
            if predicted:
                # Paper Section 4.2: explore only if the lower bound does
                # not exceed min(B, Cost(BestPlan)).
                bound = lower_bound(query, left, right)
                if bound > cap:
                    metrics.predicted_prunes += 1
                    if tracing:
                        self.tracer.predicted_prune(left, right, bound)
                    continue
            methods: list[tuple[float, JoinMethod]] = []
            for method in join_methods:
                if order is not None:
                    produced = cost_model.join_output_order(
                        query, method, left, right
                    )
                    if produced != order:
                        continue
                methods.append(
                    (operator_cost_of(query, method, left, right), method)
                )
            if not methods:
                continue
            # Algorithm 7 budgets each operator separately; because every
            # method takes unordered inputs and children return *optimal*
            # plans, fetching the children once under the cheapest
            # operator's budget is equivalent (a child that fails the
            # loosest budget fails them all) and avoids re-deriving the
            # children per method when the memo cannot absorb it.
            cheapest = min(cost for cost, _ in methods)
            remaining = cap * BUDGET_HEADROOM - cheapest
            if remaining < 0:
                continue
            left_plan = get_best_budgeted(left, None, remaining)
            if left_plan is None:
                continue
            remaining -= left_plan.cost
            right_plan = get_best_budgeted(right, None, remaining)
            if right_plan is None:
                continue
            for operator_cost, method in methods:
                total = left_plan.cost + right_plan.cost + operator_cost
                metrics.join_operators_costed += 1
                if h_join_gap is not None:
                    note_join_costed()
                if total <= min(budget, plan_cost(best)) and total < plan_cost(best):
                    best = build_join(
                        query, method, left_plan, right_plan
                    )
                    if watching:
                        self._anytime_best = best
        if self._h_partitions is not None:
            self._h_partitions.observe(partitions_seen)
        return best
