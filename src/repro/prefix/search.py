"""Backtracking prefix search over left-deep join sequences."""

from __future__ import annotations

from repro.analysis.metrics import Metrics
from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.plans.physical import INFINITY, Plan
from repro.spaces import PlanSpace

__all__ = ["PrefixSearchOptimizer"]


class PrefixSearchOptimizer:
    """Left-deep join enumeration with O(n) memory and no memoization.

    Parameters
    ----------
    query:
        The join query.
    cp_free:
        Restrict prefix extensions to relations joined to the prefix by a
        predicate (the left-deep CP-free space); with ``False`` any
        unjoined relation may extend the prefix.
    aggressiveness:
        Branch-and-bound factor ``gamma >= 1``: a prefix is abandoned when
        ``gamma * accumulated_cost >= incumbent``.  ``1.0`` is admissible
        (optimal result); larger values prune more and may miss the
        optimum — SQL Anywhere's deliberate trade (Section 2.3).
    """

    def __init__(
        self,
        query: Query,
        cost_model: CostModel | None = None,
        *,
        cp_free: bool = True,
        aggressiveness: float = 1.0,
        metrics: Metrics | None = None,
    ) -> None:
        if aggressiveness < 1.0:
            raise ValueError("aggressiveness must be >= 1.0")
        self.query = query
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.cp_free = cp_free
        self.aggressiveness = aggressiveness
        self.metrics = metrics if metrics is not None else Metrics()
        #: Prefixes visited and prefixes pruned, for effort comparisons.
        self.prefixes_explored = 0
        self.prefixes_pruned = 0

    @property
    def space(self) -> PlanSpace:
        """The left-deep plan space being searched."""
        if self.cp_free:
            return PlanSpace.left_deep_cp_free()
        return PlanSpace.left_deep_with_cp()

    def optimize(self, order: int | None = None) -> Plan:
        """Search all prefixes (subject to pruning) and return the best."""
        if order is not None:
            raise NotImplementedError("prefix search has no order machinery")
        query = self.query
        n = query.n
        self._incumbent: Plan | None = None
        self._scans = []
        for v in range(n):
            scans = self.cost_model.scan_plans(query, 1 << v, None)
            self._scans.append(min(scans, key=lambda p: p.cost))
        for v in range(n):
            self._extend(self._scans[v])
        if self._incumbent is None:
            raise RuntimeError("prefix search found no complete plan")
        return self._incumbent

    # -- internals ---------------------------------------------------------------

    def _extend(self, prefix_plan: Plan) -> None:
        """Recursively extend ``prefix_plan`` one relation at a time."""
        query = self.query
        self.prefixes_explored += 1
        joined = prefix_plan.vertices
        if joined == query.graph.all_vertices:
            if self._incumbent is None or prefix_plan.cost < self._incumbent.cost:
                self._incumbent = prefix_plan
            return

        if self.cp_free:
            candidates = query.graph.neighbors_of_set(joined)
        else:
            candidates = query.graph.all_vertices & ~joined
        # Cheapest-result-first ordering finds strong incumbents early,
        # which is what makes aggressive bounding effective in practice.
        ordered = sorted(
            self._bits(candidates),
            key=lambda v: query.cardinality(joined | (1 << v)),
        )
        incumbent_cost = (
            self._incumbent.cost if self._incumbent is not None else INFINITY
        )
        for v in ordered:
            best_step: Plan | None = None
            for method in self.cost_model.JOIN_METHODS:
                plan = self.cost_model.build_join(
                    query, method, prefix_plan, self._scans[v]
                )
                self.metrics.join_operators_costed += 1
                if best_step is None or plan.cost < best_step.cost:
                    best_step = plan
            self.metrics.logical_joins_enumerated += 1
            incumbent_cost = (
                self._incumbent.cost if self._incumbent is not None else INFINITY
            )
            if self.aggressiveness * best_step.cost >= incumbent_cost:
                self.prefixes_pruned += 1
                continue
            self._extend(best_step)

    @staticmethod
    def _bits(mask: int):
        while mask:
            low = mask & -mask
            mask ^= low
            yield low.bit_length() - 1
