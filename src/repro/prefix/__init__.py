"""Prefix search: memory-constrained left-deep enumeration (Section 2.3).

The paper's taxonomy includes the Sybase SQL Anywhere approach [Bowman &
Paulley]: left-deep join trees abstracted as relation sequences, explored
by extending prefixes with backtracking.  No dynamic programming or
memoization is used, so memory is O(n) — at the price of a Θ(n!) search
space that is tamed only by very aggressive accumulated-cost
branch-and-bound, which may sacrifice optimality.

:class:`PrefixSearchOptimizer` reproduces both regimes: with
``aggressiveness=1.0`` the pruning is admissible (a partial plan is
abandoned only when it already costs as much as the incumbent) and the
result is optimal; larger factors prune harder and may return suboptimal
plans, trading plan quality for enumeration speed exactly as Section 2.3
describes.
"""

from repro.prefix.search import PrefixSearchOptimizer

__all__ = ["PrefixSearchOptimizer"]
