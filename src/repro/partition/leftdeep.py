"""Optimal left-deep CP-free partitioning via articulation vertices.

Section 3.3: "Graph ``G|_{V \\ {v}}`` is disconnected precisely when ``v``
is an articulation vertex of ``G``.  Using the DFS algorithm of Aho et al.
the set of articulation vertices can be identified (and hence avoided) in
Theta(|E|) time, eliminating the need for a connectivity test.  The
resulting search algorithm is optimal for left-deep trees without cartesian
products."
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.metrics import Metrics
from repro.core.biconnection import articulation_vertices
from repro.core.joingraph import JoinGraph
from repro.partition.base import PartitionStrategy, PlanSpace

__all__ = ["MinCutLeftDeep"]


class MinCutLeftDeep(PartitionStrategy):
    """Peel off every non-articulation vertex of the (connected) subset.

    Each non-articulation vertex is the dual of a minimal cut whose one
    component is unary, so this is the left-deep specialization of minimal
    cut partitioning; the paper calls the resulting search algorithm TLNMC.
    """

    name = "mc"
    space = PlanSpace.left_deep_cp_free()
    kernel = "partition.articulation"

    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield (rest, singleton) for every non-articulation vertex."""
        if subset & (subset - 1) == 0:
            return  # singletons have no binary partitions
        articulation = articulation_vertices(graph, subset)
        metrics.bcc_trees_built += 1
        if self.tracer.enabled:
            self.tracer.event(
                "articulation_scan", subset=subset, articulation=articulation
            )
        removable = subset & ~articulation
        while removable:
            low = removable & -removable
            removable ^= low
            metrics.partitions_emitted += 1
            yield (subset ^ low, low)
