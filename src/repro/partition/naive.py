"""Naive partitioning strategies (Section 3.2, Algorithm 2).

"Naive" means the strategy ignores the edges of the join graph when
generating candidate partitions, and — for CP-free spaces — discards
invalid candidates with explicit connectivity tests (generate-and-test).
As the paper shows, this is optimal for spaces *containing* cartesian
products but suboptimal (by up to an exponential factor, for bushy CP-free
spaces over sparse graphs) when cartesian products are excluded.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.metrics import Metrics
from repro.core.bitset import iter_subsets
from repro.core.joingraph import JoinGraph
from repro.partition.base import PartitionStrategy, PlanSpace

__all__ = [
    "NaiveBushyCP",
    "NaiveBushyCPFree",
    "NaiveLeftDeepCP",
    "NaiveLeftDeepCPFree",
]


class NaiveLeftDeepCP(PartitionStrategy):
    """Algorithm 2 verbatim: peel off each relation in turn.

    Emits ``|V|`` partitions per invocation at Theta(|V|) total cost, which
    is optimal for left-deep trees with cartesian products.
    """

    name = "naive"
    space = PlanSpace.left_deep_with_cp()
    kernel = "partition.peel"

    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield the partitions of ``subset`` (see class docs)."""
        if subset & (subset - 1) == 0:
            return  # singletons have no binary partitions
        remaining = subset
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            metrics.partitions_emitted += 1
            yield (subset ^ low, low)


class NaiveLeftDeepCPFree(PartitionStrategy):
    """Algorithm 2 plus a connectivity test on the residual set.

    The added test raises the per-invocation cost to Theta(|V|^2) while the
    number of surviving partitions can be as low as two (chains), so the
    resulting search algorithm is a linear factor worse than optimal.
    """

    name = "naive"
    space = PlanSpace.left_deep_cp_free()
    kernel = "partition.peel"

    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield the partitions of ``subset`` (see class docs)."""
        if subset & (subset - 1) == 0:
            return  # singletons have no binary partitions
        remaining = subset
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            rest = subset ^ low
            metrics.connectivity_tests += 1
            if graph.is_connected(rest):
                metrics.partitions_emitted += 1
                yield (rest, low)
            else:
                metrics.failed_connectivity_tests += 1
                if self.tracer.enabled:
                    self.tracer.event("connectivity_failed", left=rest, right=low)


class NaiveBushyCP(PartitionStrategy):
    """All non-empty strict subsets of ``V`` (Section 3.2, bushy case).

    Emits ``2^|V| - 2`` ordered partitions at Theta(2^|V|) total cost,
    which is optimal for bushy trees with cartesian products.
    """

    name = "naive"
    space = PlanSpace.bushy_with_cp()
    kernel = "enum.subsets"

    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield the partitions of ``subset`` (see class docs)."""
        if subset & (subset - 1) == 0:
            return  # singletons have no binary partitions
        for left in iter_subsets(subset, proper=True):
            metrics.partitions_emitted += 1
            yield (left, subset ^ left)


class NaiveBushyCPFree(PartitionStrategy):
    """All strict subsets with two connectivity tests (generate-and-test).

    Per-invocation cost Theta(|V| * 2^|V|) while the number of valid
    partitions can be as small as ``|V| - 1`` (acyclic graphs): the source
    of the exponential suboptimality that minimal-cut partitioning repairs.
    """

    name = "naive"
    space = PlanSpace.bushy_cp_free()
    kernel = "enum.subsets"

    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield the partitions of ``subset`` (see class docs)."""
        if subset & (subset - 1) == 0:
            return  # singletons have no binary partitions
        for left in iter_subsets(subset, proper=True):
            right = subset ^ left
            metrics.connectivity_tests += 1
            if not graph.is_connected(left):
                metrics.failed_connectivity_tests += 1
                if self.tracer.enabled:
                    self.tracer.event("connectivity_failed", left=left, right=right)
                continue
            metrics.connectivity_tests += 1
            if not graph.is_connected(right):
                metrics.failed_connectivity_tests += 1
                if self.tracer.enabled:
                    self.tracer.event("connectivity_failed", left=left, right=right)
                continue
            metrics.partitions_emitted += 1
            yield (left, right)
