"""Partition strategy interface and plan-space descriptors."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.analysis.metrics import Metrics
from repro.core.joingraph import JoinGraph
from repro.obs.profile import NULL_PROFILER, KernelProfiler
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.spaces import PlanSpace

__all__ = ["PartitionStrategy", "PlanSpace"]


class PartitionStrategy(ABC):
    """Abstract ``Partition`` function plugged into Algorithm 1.

    Subclasses set :attr:`name` (the paper's algorithm-family label) and
    :attr:`space`, and implement :meth:`partitions`.

    Strategies report strategy-internal decisions (biconnection-tree
    builds/reuses, wasted connectivity probes, articulation scans) to
    :attr:`tracer` via :meth:`~repro.obs.tracer.Tracer.event`; the
    enumerator rebinds the attribute when tracing is on, and the default
    :data:`~repro.obs.tracer.NULL_TRACER` keeps the untraced hot path
    down to one ``enabled`` attribute test.

    Contract: ``partitions(graph, subset, metrics)`` yields ordered pairs
    ``(left, right)`` of non-empty disjoint masks whose union is ``subset``.
    For CP-free spaces the caller guarantees ``subset`` induces a connected
    subgraph, and every yielded side must do so too.  Every join operator of
    the space must correspond to exactly one yielded pair (the paper counts
    ``A ⋈ B`` and ``B ⋈ A`` separately; bushy strategies therefore emit both
    orientations of each cut, while left-deep strategies emit one pair per
    removable relation).
    """

    name: str = "abstract"
    space: PlanSpace
    #: Span/event sink; rebound per-run by :class:`~repro.enumerator.TopDownEnumerator`.
    tracer: Tracer = NULL_TRACER
    #: Profiling kernel this strategy's partition generation bills to
    #: (see ``docs/profiling.md`` for the taxonomy).
    kernel: str = "partition.enumerate"
    #: Kernel profiler; rebound per-run by the enumerator when profiling.
    profiler: KernelProfiler = NULL_PROFILER

    @abstractmethod
    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield the ordered partitions of ``subset``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(space={self.space.describe()!r})"
