"""Graph partitioning strategies driving top-down join enumeration.

Algorithm 1's ``Partition`` hook: each strategy takes a vertex set ``V`` and
yields ordered pairs ``(V_L, V_R)`` with ``V = V_L ∪ V_R`` and
``V_L ∩ V_R = ∅``.  The choice of strategy alone determines the search
space (left-deep vs. bushy, with or without cartesian products), exactly as
in the paper's Section 3.1.
"""

from repro.partition.base import PartitionStrategy, PlanSpace
from repro.partition.naive import (
    NaiveBushyCP,
    NaiveBushyCPFree,
    NaiveLeftDeepCP,
    NaiveLeftDeepCPFree,
)
from repro.partition.leftdeep import MinCutLeftDeep
from repro.partition.mincut_lazy import MinCutEager, MinCutLazy
from repro.partition.mincut_optimistic import MinCutOptimistic
from repro.partition.reference import BruteForceMinCuts, minimal_cut_pairs

__all__ = [
    "PartitionStrategy",
    "PlanSpace",
    "NaiveBushyCP",
    "NaiveBushyCPFree",
    "NaiveLeftDeepCP",
    "NaiveLeftDeepCPFree",
    "MinCutLeftDeep",
    "MinCutEager",
    "MinCutLazy",
    "MinCutOptimistic",
    "BruteForceMinCuts",
    "minimal_cut_pairs",
]
