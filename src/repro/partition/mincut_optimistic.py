"""Optimistic minimal-cut partitioning (Algorithm 6).

A much simpler strategy that replaces biconnection trees with plain
connectivity probes: grow ``S`` one neighbour at a time, checking after
each candidate ``v`` whether the complement ``G|_{V \\ (S ∪ {v})}`` stays
connected.  The recursive backtracking bounds the number of failed probes
by the neighbours of ``S``, avoiding the naive strategy's potential
exponential number of failures; the amortized cost is Theta(|V|) per cut
for cliques and acyclic graphs but Theta(|V|^2) per cut in the worst case
(e.g. a spoked wheel whose hub enters ``S`` first — the scenario of
Figure 5).

Implementation note.  The paper's Algorithm 6 pseudocode simply discards a
candidate when the complement disconnects.  Read literally, that is
incomplete: on a branching tree, a cut whose ``S``-side is an interior
vertex's whole subtree can never be grown one vertex at a time with the
complement connected at every step (the interior vertex must drag its
dangling subtree along, which is exactly the descendant jump
``S ∪ D_T(v)`` that Algorithm 4 performs via the biconnection tree).  We
therefore implement the evident intent: when removing ``S ∪ {v}``
disconnects the graph, the components separated from the anchor ``t`` are
*repaired into* ``S`` — the same set Algorithm 4 derives from the tree —
and the candidate only counts as a failed probe (wasted work, skipped)
when the repair collides with the exclusion set ``T'``, which is precisely
when the resulting cut is owned by an earlier sibling branch.  The test
suite validates exactness against a brute-force oracle over every anchor
choice, and the cost profile (zero failures on cliques, fewer failures
than cuts on acyclic graphs, Theta(c|V|) failures on wheels) matches the
paper's analysis.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.metrics import Metrics
from repro.core.joingraph import JoinGraph
from repro.partition.base import PartitionStrategy, PlanSpace

__all__ = ["MinCutOptimistic"]


class MinCutOptimistic(PartitionStrategy):
    """Algorithm 6: connectivity-probe driven minimal-cut enumeration.

    ``anchor`` optionally fixes the seed vertex ``t`` (must be in the
    partitioned subset); by default the lowest-numbered vertex is used.
    The anchor choice never affects the set of cuts emitted, only the
    amount of wasted probing — Figure 5's worst case needs a rim anchor
    on a spoked wheel so the hub can be the first vertex added to ``S``.
    """

    name = "mc-optimistic"
    space = PlanSpace.bushy_cp_free()
    kernel = "partition.mincut_probe"

    def __init__(self, anchor: int | None = None) -> None:
        self.anchor = anchor

    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield both orientations of every minimal cut of ``subset``."""
        if subset & (subset - 1) == 0:
            return  # singletons have no binary partitions
        if self.anchor is not None and subset >> self.anchor & 1:
            anchor = self.anchor
        else:
            anchor = (subset & -subset).bit_length() - 1
        yield from self._mincut(graph, subset, anchor, 0, 1 << anchor, metrics)

    def _mincut(
        self,
        graph: JoinGraph,
        subset: int,
        anchor: int,
        s: int,
        t: int,
        metrics: Metrics,
    ) -> Iterator[tuple[int, int]]:
        if s:
            rest = subset & ~s
            metrics.partitions_emitted += 2
            yield (s, rest)
            yield (rest, s)
            candidates = graph.neighbors_of_set(s, within=subset) & ~t
        else:
            candidates = subset & ~(1 << anchor)  # N(∅) = V \ {t}

        t_prime = t
        remaining = candidates
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            s_prime = s | low
            rest = subset & ~s_prime
            metrics.connectivity_tests += 1
            anchor_side = graph.reachable_from(1 << anchor, rest)
            severed = rest ^ anchor_side
            if severed:
                # Disconnected: repair by dragging the severed components
                # (the descendant set D_T(v)) into S — unless they touch
                # T', in which case this cut belongs to an earlier sibling
                # and the probe was wasted work.
                if severed & t_prime:
                    metrics.failed_connectivity_tests += 1
                    if self.tracer.enabled:
                        self.tracer.event(
                            "probe_wasted", candidate=low, severed=severed
                        )
                    continue
                s_prime |= severed
                if self.tracer.enabled:
                    self.tracer.event(
                        "probe_repaired", candidate=low, severed=severed
                    )
            yield from self._mincut(graph, subset, anchor, s_prime, t_prime, metrics)
            t_prime |= low
