"""Minimal-cut partitioning with lazily rebuilt biconnection trees.

Algorithm 4 (``MinCutLazy``) of the paper, tuned from Provan & Shier's
(s,t)-cut paradigm: maintain disjoint connected sets ``S`` (the growing
side of the cut) and ``T`` (vertices already tried in sibling branches,
seeded with an arbitrary anchor ``t``).  Each recursive invocation emits
one minimal cut — the two ordered partitions ``(S, V\\S)`` and
``(V\\S, S)`` — and extends ``S`` by each *pivot*: a neighbour of ``S``
outside ``S ∪ T`` that is maximally distant from ``t`` in the biconnection
tree.  Extending by the pivot's full descendant set ``D_T(v)`` guarantees
that the complement stays connected, so no connectivity test is needed.

The headline optimization is laziness: the parent invocation's tree
``T_old`` is reused whenever the conservative usability test of Algorithm 5
passes, so acyclic graphs build exactly one tree for the whole enumeration.
``MinCutEager`` is the same algorithm with reuse disabled (a fresh tree per
invocation), as used for the baseline in Figures 2–5.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.metrics import Metrics
from repro.core.biconnection import BiconnectionTree, build_bcc_tree
from repro.core.joingraph import JoinGraph
from repro.obs.profile import KERNEL_BCC_BUILD
from repro.partition.base import PartitionStrategy, PlanSpace

__all__ = ["MinCutEager", "MinCutLazy"]


class MinCutLazy(PartitionStrategy):
    """Algorithm 4: minimal cuts with lazy biconnection-tree reuse.

    Parameters
    ----------
    size3_tweak:
        Apply footnote 2's refinement of the usability test (avoids false
        negatives for biconnected components of size three).  Off by
        default to match Algorithm 5 exactly.
    anchor:
        Optionally fix the seed vertex ``t`` (used when it lies in the
        partitioned subset); defaults to the lowest-numbered vertex.  The
        anchor never changes the cuts emitted, only the tree-reuse rate.
    """

    name = "mc"
    space = PlanSpace.bushy_cp_free()
    kernel = "partition.mincut"
    reuse_trees = True

    def __init__(self, size3_tweak: bool = False, anchor: int | None = None) -> None:
        self.size3_tweak = size3_tweak
        self.anchor = anchor

    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield both orientations of every minimal cut of ``subset``."""
        if subset & (subset - 1) == 0:
            return  # singletons have no binary partitions
        if self.anchor is not None and subset >> self.anchor & 1:
            anchor = self.anchor
        else:
            anchor = (subset & -subset).bit_length() - 1
        yield from self._mincut(graph, subset, anchor, 0, 1 << anchor, None, metrics)

    def _mincut(
        self,
        graph: JoinGraph,
        subset: int,
        anchor: int,
        s: int,
        t: int,
        tree_old: BiconnectionTree | None,
        metrics: Metrics,
    ) -> Iterator[tuple[int, int]]:
        """Recursive body of Algorithm 4 over ``G|_subset``.

        ``s`` and ``t`` are the bitmaps of the sets the paper calls ``S``
        and ``T``; ``anchor`` is the seed vertex of ``T``.
        """
        rest = subset & ~s
        if s:
            metrics.partitions_emitted += 2
            yield (s, rest)
            yield (rest, s)

        # N(S), with the paper's convention N(∅) = V \ {t}.
        if s:
            neighbourhood = graph.neighbors_of_set(s, within=subset) & ~s
        else:
            neighbourhood = subset & ~(1 << anchor)
        if neighbourhood & ~t == 0:
            return  # S cannot be extended

        tree: BiconnectionTree | None = None
        if tree_old is not None and self.reuse_trees:
            metrics.usability_tests += 1
            if tree_old.is_usable_for(rest, size3_tweak=self.size3_tweak):
                metrics.usability_hits += 1
                tree = tree_old
                if self.tracer.enabled:
                    self.tracer.event("bcc_tree_reused", rest=rest)
        if tree is None:
            if self.profiler.enabled:
                self.profiler.enter(KERNEL_BCC_BUILD)
                tree = build_bcc_tree(graph, rest, anchor)
                self.profiler.exit()
            else:
                tree = build_bcc_tree(graph, rest, anchor)
            metrics.bcc_trees_built += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "bcc_tree_built", rest=rest, reuse_denied=tree_old is not None
                )

        # Pivot set P: neighbours of S outside S ∪ T whose subtree contains
        # no other neighbour of S (maximally distant from the anchor).
        blocked = s | t
        pivots: list[int] = []
        candidates = neighbourhood & ~blocked
        remaining = candidates
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            v = low.bit_length() - 1
            if tree.desc(v, within=rest) & neighbourhood == low:
                pivots.append(v)

        t_prime = t
        for v in pivots:
            extension = tree.desc(v, within=rest)
            yield from self._mincut(
                graph, subset, anchor, s | extension, t_prime, tree, metrics
            )
            t_prime |= tree.anc(v, within=rest)


class MinCutEager(MinCutLazy):
    """Algorithm 4 with tree reuse disabled: build a tree per invocation.

    This is the paper's ``MinCutEager`` baseline, essentially Provan &
    Shier's original Theta(|E|)-per-cut behaviour.
    """

    reuse_trees = False
