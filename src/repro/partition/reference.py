"""Brute-force minimal-cut oracle used for validation.

Enumerates every subset of the vertex set and keeps those that split the
graph into two connected halves.  Exponential, but a trustworthy ground
truth for testing the linear-delay strategies against.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.metrics import Metrics
from repro.core.bitset import iter_subsets
from repro.core.joingraph import JoinGraph
from repro.partition.base import PartitionStrategy, PlanSpace

__all__ = ["BruteForceMinCuts", "minimal_cut_pairs"]


def minimal_cut_pairs(graph: JoinGraph, subset: int | None = None) -> set[tuple[int, int]]:
    """Return the set of unordered minimal cuts of ``G|_subset``.

    Each cut is reported once as ``(smaller_mask, larger_mask)`` with ties
    broken numerically, both sides non-empty and connected.
    """
    if subset is None:
        subset = graph.all_vertices
    cuts: set[tuple[int, int]] = set()
    for left in iter_subsets(subset, proper=True):
        right = subset ^ left
        if left > right:
            continue  # the complement pass will handle it
        if graph.is_connected(left) and graph.is_connected(right):
            cuts.add((left, right))
    return cuts


class BruteForceMinCuts(PartitionStrategy):
    """Oracle strategy emitting both orientations of every minimal cut."""

    name = "bruteforce"
    space = PlanSpace.bushy_cp_free()
    kernel = "enum.subsets"

    # The O(2^n) oracle exists to cross-check the real strategies, not to
    # be fast; it deliberately materializes the full cut set so the sort
    # below gives a canonical emission order.
    # lint: disable=flow-hotpath-alloc -- reference oracle, off the optimized path by design
    def partitions(
        self, graph: JoinGraph, subset: int, metrics: Metrics
    ) -> Iterator[tuple[int, int]]:
        """Yield both orientations of every minimal cut (oracle order)."""
        if subset & (subset - 1) == 0:
            return
        for left, right in sorted(minimal_cut_pairs(graph, subset)):
            metrics.partitions_emitted += 2
            yield (left, right)
            yield (right, left)
