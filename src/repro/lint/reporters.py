"""Human, JSON, and SARIF renderings of a :class:`~repro.lint.engine.LintReport`."""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.engine import ERROR, LintReport, Rule

__all__ = ["render_json", "render_rules", "render_sarif", "render_text"]


def render_text(report: LintReport) -> str:
    """One finding per line, then a one-line summary (empty input safe)."""
    lines = [finding.render() for finding in report.findings]
    lines.append(
        f"lint: {report.files_checked} file(s), "
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        + ("" if report.findings else " — clean")
    )
    return "\n".join(lines)


def render_json(report: LintReport, *, indent: int = 2) -> str:
    """The machine-readable report (CI uploads this as an artifact)."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


def render_sarif(
    report: LintReport, rules: Sequence[Rule], *, indent: int = 2
) -> str:
    """SARIF 2.1.0 document for code-scanning upload (CI artifact).

    One run, one driver (``repro-lint``), one rule descriptor per rule
    that actually ran, one result per finding.  Severities map
    ``error`` → ``error`` and ``warning`` → ``warning``; locations use
    repo-relative URIs exactly as linted.
    """
    ran = set(report.rules_run)
    descriptors = [
        {
            "id": rule.name,
            "shortDescription": {"text": rule.description or rule.name},
            "defaultConfiguration": {
                "level": "error" if rule.severity == ERROR else "warning"
            },
        }
        for rule in rules
        if rule.name in ran
    ]
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": "error" if finding.severity == ERROR else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=indent, sort_keys=True)


def render_rules(rules: Sequence[Rule]) -> str:
    """The ``--list-rules`` catalog: name, severity, scope, description."""
    lines = []
    for rule in rules:
        scope = ", ".join(rule.scope) if rule.scope else "all modules"
        lines.append(f"{rule.name:24s} [{rule.severity:7s}] {scope}")
        lines.append(f"{'':24s} {rule.description}")
    return "\n".join(lines)
