"""Human and JSON renderings of a :class:`~repro.lint.engine.LintReport`."""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.engine import LintReport, Rule

__all__ = ["render_json", "render_rules", "render_text"]


def render_text(report: LintReport) -> str:
    """One finding per line, then a one-line summary (empty input safe)."""
    lines = [finding.render() for finding in report.findings]
    lines.append(
        f"lint: {report.files_checked} file(s), "
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        + ("" if report.findings else " — clean")
    )
    return "\n".join(lines)


def render_json(report: LintReport, *, indent: int = 2) -> str:
    """The machine-readable report (CI uploads this as an artifact)."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


def render_rules(rules: Sequence[Rule]) -> str:
    """The ``--list-rules`` catalog: name, severity, scope, description."""
    lines = []
    for rule in rules:
        scope = ", ".join(rule.scope) if rule.scope else "all modules"
        lines.append(f"{rule.name:24s} [{rule.severity:7s}] {scope}")
        lines.append(f"{'':24s} {rule.description}")
    return "\n".join(lines)
