"""AST-based lint engine: rule protocol, pragmas, and the file runner.

The engine is deliberately repo-aware rather than general-purpose: rules
encode the invariants this reproduction's correctness rests on (seeded
randomness, bitmap discipline in the Section 3.1 hot paths, tracer-guarded
instrumentation, the package layering DAG) and the conformance subsystem
verifies *dynamically*.  A rule is a small object that inspects one parsed
module and yields :class:`Finding`\\ s; the engine handles everything
around that — file discovery, module-name derivation, pragma suppression,
rule selection, and severity-based exit status.

Pragma syntax (see ``docs/static-analysis.md``)::

    x = set(items)            # lint: disable=set-iteration-order  -- why
    # lint: disable-file=import-layering  -- module-wide waiver + reason

A trailing line pragma suppresses the named rules on that physical line.
A ``disable`` pragma on a comment-only line attaches to the next code
line instead (so multi-line justification blocks can sit above the code
they waive).  ``disable-file`` suppresses for the whole module.
Suppressions must name rules explicitly — there is no bare ``disable``.
"""

from __future__ import annotations

import ast
import fnmatch
import os
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "LintReport",
    "ModuleSource",
    "Rule",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "parse_pragmas",
]

ERROR = "error"
WARNING = "warning"

#: ``# lint: disable=rule-a,rule-b`` with an optional trailing reason.
_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str
    path: str
    module: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.severity}] {self.rule}: {self.message}"
        )


@dataclass
class Pragmas:
    """Suppressions parsed from a module's comments."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = frozenset()

    def suppresses(self, rule: str, line: int) -> bool:
        if rule in self.file_wide:
            return True
        return rule in self.by_line.get(line, frozenset())


def parse_pragmas(source: str) -> Pragmas:
    """Extract ``# lint: disable[-file]=...`` pragmas via the tokenizer.

    Using :mod:`tokenize` (not a regex over raw lines) means pragmas inside
    string literals are never misread as suppressions.
    """
    by_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    lines = source.splitlines()
    standalone: list[tuple[int, set[str]]] = []
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            rules = {
                name.strip()
                for name in match.group("rules").split(",")
                if name.strip()
            }
            if match.group("kind") == "disable-file":
                file_wide |= rules
                continue
            line, col = token.start
            if not lines[line - 1][:col].strip():
                standalone.append((line, rules))  # comment-only line
            else:
                by_line.setdefault(line, set()).update(rules)
    except tokenize.TokenError:
        pass  # unparseable tail; the ast parse will surface the real error
    # A standalone pragma comment attaches to the next code line, skipping
    # blank and comment lines, so justification blocks can precede the code.
    for line, rules in standalone:
        target = line
        for offset in range(line, len(lines)):
            text = lines[offset].strip()
            if text and not text.startswith("#"):
                target = offset + 1
                break
        by_line.setdefault(target, set()).update(rules)
    return Pragmas(
        by_line={line: frozenset(rules) for line, rules in by_line.items()},
        file_wide=frozenset(file_wide),
    )


@dataclass
class ModuleSource:
    """One parsed module handed to every rule."""

    path: str
    module: str
    source: str
    tree: ast.Module
    pragmas: Pragmas

    @classmethod
    def parse(cls, source: str, *, path: str, module: str) -> "ModuleSource":
        return cls(
            path=path,
            module=module,
            source=source,
            tree=ast.parse(source, filename=path),
            pragmas=parse_pragmas(source),
        )

    def finding(
        self, rule: "Rule", node: ast.AST | int, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (or an explicit line)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.name,
            severity=rule.severity,
            path=self.path,
            module=self.module,
            line=line,
            col=col,
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` (kebab-case, stable — pragmas and
    ``--select`` reference it), :attr:`severity`, :attr:`description`, and
    optionally :attr:`scope` — module-name prefixes the rule applies to
    (``None`` means every module).  :meth:`check` yields raw findings; the
    engine applies scope and pragma suppression.
    """

    name: str = ""
    severity: str = ERROR
    description: str = ""
    #: Module-name prefixes this rule is restricted to (None = all).
    scope: tuple[str, ...] | None = None

    def applies_to(self, module: ModuleSource) -> bool:
        if self.scope is None:
            return True
        return any(
            module.module == prefix or module.module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.name} [{self.severity}]>"


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True iff no error-severity findings (warnings do not fail)."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }


def _expand_patterns(patterns: Iterable[str], known: set[str]) -> set[str]:
    """Expand exact names and ``fnmatch`` globs (``flow-*``) to rule names."""
    expanded: set[str] = set()
    for requested in patterns:
        if any(ch in requested for ch in "*?["):
            matched = set(fnmatch.filter(known, requested))
            if not matched:
                raise ValueError(
                    f"pattern {requested!r} matches no rule; choose from "
                    f"{sorted(known)}"
                )
            expanded |= matched
        elif requested not in known:
            raise ValueError(
                f"unknown rule {requested!r}; choose from {sorted(known)}"
            )
        else:
            expanded.add(requested)
    return expanded


def _select_rules(
    rules: Sequence[Rule],
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
) -> list[Rule]:
    known = {rule.name for rule in rules}
    chosen = list(rules)
    if select:
        wanted = _expand_patterns(select, known)
        chosen = [rule for rule in chosen if rule.name in wanted]
    if ignore:
        dropped = _expand_patterns(ignore, known)
        chosen = [rule for rule in chosen if rule.name not in dropped]
    return chosen


def lint_modules(
    modules: Iterable[ModuleSource],
    rules: Sequence[Rule],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    program_modules: Iterable[ModuleSource] | None = None,
) -> LintReport:
    """Run ``rules`` over parsed modules; the core of every entry point.

    Rules with ``needs_program = True`` (the whole-program flow rules)
    get a prepare phase first: the full module list — ``program_modules``
    when given (the ``--program-root`` fast path: analyze the whole
    program, report only on ``modules``), else the modules being linted —
    is handed to each such rule's ``prepare``, which returns the shared
    program object so the index/call-graph/effect fixpoint is built once
    per run rather than once per rule.
    """
    chosen = _select_rules(rules, select, ignore)
    report = LintReport(rules_run=tuple(rule.name for rule in chosen))
    module_list = list(modules)
    program_rules = [
        rule for rule in chosen if getattr(rule, "needs_program", False)
    ]
    if program_rules:
        context = (
            list(program_modules) if program_modules is not None else module_list
        )
        shared: object | None = None
        for rule in program_rules:
            shared = rule.prepare(context, shared)  # type: ignore[attr-defined]
    for module in module_list:
        report.files_checked += 1
        for rule in chosen:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if module.pragmas.suppresses(finding.rule, finding.line):
                    continue
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def lint_source(
    source: str,
    rules: Sequence[Rule],
    *,
    module: str = "fixture",
    path: str = "<string>",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Lint one in-memory snippet (the unit-test entry point)."""
    parsed = ModuleSource.parse(source, path=path, module=module)
    return lint_modules([parsed], rules, select=select, ignore=ignore)


def module_name_for(path: str) -> str:
    """Derive a dotted module name from a file path.

    Anchored at the last ``repro`` path component so both
    ``src/repro/core/bitset.py`` and an installed layout resolve to
    ``repro.core.bitset``; paths outside a ``repro`` tree fall back to the
    file stem (fixture files in temporary directories).
    """
    normalized = os.path.normpath(path)
    parts = normalized.split(os.sep)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        anchor = len(parts) - 1 - parts[:-1][::-1].index("repro") - 1
        dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        candidate = os.path.join(dirpath, name)
                        if candidate not in seen:
                            seen.add(candidate)
                            yield candidate
        elif path.endswith(".py"):
            if path not in seen:
                seen.add(path)
                yield path


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    on_parse_error: Callable[[str, SyntaxError], None] | None = None,
    program_paths: Sequence[str] | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    ``program_paths`` widens the *analysis* context without widening the
    *report*: the whole-program flow rules see every module under those
    paths (plus the linted ones), while findings are still restricted to
    ``paths`` — the pre-commit fast path lints only changed files against
    the full program.
    """

    def parse_all(targets: Iterable[str]) -> Iterator[ModuleSource]:
        for file_path in iter_python_files(targets):
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
            try:
                yield ModuleSource.parse(
                    source, path=file_path, module=module_name_for(file_path)
                )
            except SyntaxError as exc:
                if on_parse_error is not None:
                    on_parse_error(file_path, exc)
                else:
                    raise

    program_modules: list[ModuleSource] | None = None
    if program_paths is not None:
        by_path = {m.path: m for m in parse_all(program_paths)}
        for module in parse_all(paths):
            by_path.setdefault(module.path, module)
        program_modules = [by_path[key] for key in sorted(by_path)]
        linted = {
            os.path.normpath(p) for p in iter_python_files(paths)
        }
        modules: Iterable[ModuleSource] = [
            m for m in program_modules if os.path.normpath(m.path) in linted
        ]
    else:
        modules = parse_all(paths)

    return lint_modules(
        modules,
        rules,
        select=select,
        ignore=ignore,
        program_modules=program_modules,
    )
