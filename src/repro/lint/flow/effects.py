"""Interprocedural effect inference over the call graph.

Each function gets a set of :class:`Effect` atoms.  Direct effects are
extracted syntactically from the body (IO calls, ``os.environ`` reads,
module-level ``random.*`` use, tracer/metrics emission, set allocation,
writes to module globals); transitive effects are
the least fixpoint of propagating callee effects across ``call``,
``ref``, and ``spawn`` edges.

Guarded call sites (``if tracer.enabled: ...``) do not propagate the
``TRACE`` effect: the syntactic hot-path rule already treats guarded
emission as free, and the interprocedural upgrade must agree with it.
All other effects propagate through guards — an env read is an env read
whether or not tracing is on.

The ``<unknown>`` callee contributes *no* effects (widening to bottom).
That is the pass's central, documented imprecision: a dynamically
dispatched call could do anything, but assuming it does everything
would drown the report in false positives.  See
``docs/static-analysis.md`` for the trade-off discussion.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lint.flow.callgraph import UNKNOWN, CallGraph
from repro.lint.flow.index import FunctionInfo, ProgramIndex, dotted_name

__all__ = ["Effect", "EffectAnalysis", "Witness"]


class Effect(enum.Enum):
    """Atoms of the effect lattice (a powerset lattice over these)."""

    IO = "performs-io"
    ENV = "reads-env"
    RANDOM = "unseeded-randomness"
    TRACE = "emits-trace"
    ALLOC = "allocates-mutable"
    MUTATES_SHARED = "mutates-shared-state"


#: ``random.<fn>`` module-level calls that consume the process-global,
#: unseeded RNG.  Mirrors the syntactic ``unseeded-random`` rule.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "seed",
        "getrandbits",
    }
)

#: Callee name tails that perform input/output or syscalls.
_IO_NAMES = frozenset(
    {
        "open",
        "print",
        "write",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "mkdir",
        "unlink",
        "urandom",
        "getpid",
    }
)

#: Dotted prefixes that mean IO when they lead the callee name.
_IO_PREFIXES = ("sys.stdout", "sys.stderr", "subprocess.", "socket.", "shutil.")

#: Tracer / profiler / metrics emission methods (attribute tails).
_TRACE_METHODS = frozenset(
    {
        "begin",
        "end",
        "event",
        "memo_hit",
        "memo_bound_hit",
        "predicted_prune",
        "enter",
        "exit",
        "count",
        "observe",
        "emit",
        "record",
    }
)

#: Receiver names whose method calls count as trace/metrics emission.
_TRACE_RECEIVERS = frozenset(
    {"tracer", "_tracer", "profiler", "_profiler", "metrics", "_metrics"}
)


@dataclass(frozen=True)
class Witness:
    """Why a function has an effect: the direct site, or the call edge."""

    effect: Effect
    qname: str  #: function the direct effect lives in
    line: int
    detail: str  #: human-readable description of the site
    #: Call chain from the queried function down to ``qname`` (exclusive
    #: of both endpoints); empty for direct effects.
    path: tuple[str, ...] = ()


@dataclass
class EffectAnalysis:
    """Direct + transitive effect sets for every indexed function."""

    index: ProgramIndex
    graph: CallGraph
    direct: dict[str, set[Effect]] = field(default_factory=dict)
    transitive: dict[str, set[Effect]] = field(default_factory=dict)
    #: Direct witnesses per function (effect → first site found).
    _witnesses: dict[str, dict[Effect, Witness]] = field(default_factory=dict)

    @classmethod
    def build(cls, index: ProgramIndex, graph: CallGraph) -> "EffectAnalysis":
        analysis = cls(index=index, graph=graph)
        for function in index.iter_functions():
            analysis._extract_direct(function)
        analysis._propagate()
        return analysis

    def effects_of(self, qname: str) -> set[Effect]:
        return self.transitive.get(qname, set())

    def direct_effects_of(self, qname: str) -> set[Effect]:
        return self.direct.get(qname, set())

    # -- witness reconstruction ---------------------------------------------------

    def witness(self, qname: str, effect: Effect) -> Optional[Witness]:
        """BFS the call graph for the shortest path to a direct site."""
        if effect in self.direct.get(qname, set()):
            return self._witnesses[qname][effect]
        seen = {qname}
        frontier: list[tuple[str, tuple[str, ...]]] = [(qname, ())]
        while frontier:
            next_frontier: list[tuple[str, tuple[str, ...]]] = []
            for current, path in frontier:
                for site in self.graph.callees(current):
                    callee = site.callee
                    if callee in seen or callee == UNKNOWN:
                        continue
                    if effect is Effect.TRACE and site.guarded:
                        continue
                    seen.add(callee)
                    if effect in self.direct.get(callee, set()):
                        base = self._witnesses[callee][effect]
                        return Witness(
                            effect=effect,
                            qname=callee,
                            line=base.line,
                            detail=base.detail,
                            path=path + (callee,),
                        )
                    if effect in self.transitive.get(callee, set()):
                        next_frontier.append((callee, path + (callee,)))
            frontier = next_frontier
        return None

    # -- direct extraction --------------------------------------------------------

    def _extract_direct(self, function: FunctionInfo) -> None:
        effects: set[Effect] = set()
        witnesses: dict[Effect, Witness] = {}
        module = self.index.modules[function.module]

        def note(effect: Effect, node: ast.AST, detail: str) -> None:
            effects.add(effect)
            if effect not in witnesses:
                witnesses[effect] = Witness(
                    effect=effect,
                    qname=function.qname,
                    line=getattr(node, "lineno", 1),
                    detail=detail,
                )

        guarded_lines = _guarded_line_spans(function.node)

        for node in ast.walk(function.node):
            line = getattr(node, "lineno", 0)
            in_guard = any(lo <= line <= hi for lo, hi in guarded_lines)
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                tail = name.split(".")[-1] if name else ""
                resolved = self.index.resolve(function.module, name) or name
                # -- IO --------------------------------------------------------
                if tail in _IO_NAMES or any(
                    resolved.startswith(p) for p in _IO_PREFIXES
                ):
                    note(Effect.IO, node, f"calls {name}()")
                # -- env -------------------------------------------------------
                if resolved in {"os.getenv", "os.environ.get", "os.putenv"}:
                    note(Effect.ENV, node, f"calls {resolved}()")
                # -- global RNG ------------------------------------------------
                if (
                    resolved.startswith("random.")
                    and resolved.split(".")[-1] in _GLOBAL_RANDOM_FNS
                ):
                    note(
                        Effect.RANDOM,
                        node,
                        f"calls module-level {resolved}() (process-global RNG)",
                    )
                # -- trace / metrics emission ----------------------------------
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _TRACE_METHODS
                    and not in_guard
                ):
                    receiver = node.func.value
                    rname = ""
                    if isinstance(receiver, ast.Name):
                        rname = receiver.id
                    elif isinstance(receiver, ast.Attribute):
                        rname = receiver.attr
                    if rname in _TRACE_RECEIVERS:
                        note(
                            Effect.TRACE,
                            node,
                            f"emits {rname}.{node.func.attr}() outside a guard",
                        )
                # -- set allocation (bitset-discipline breach when it
                # -- reaches the Section 3.1 hot paths) ------------------------
                if isinstance(node.func, ast.Name) and node.func.id in {
                    "set",
                    "frozenset",
                }:
                    note(Effect.ALLOC, node, f"allocates {node.func.id}()")
            elif isinstance(node, ast.SetComp):
                note(Effect.ALLOC, node, "allocates via set comprehension")
            elif isinstance(node, ast.Set):
                note(Effect.ALLOC, node, "allocates a set literal")
            elif isinstance(node, ast.Subscript) and isinstance(
                node.value, ast.Attribute
            ):
                # os.environ["X"] reads/writes
                if dotted_name(node.value) == "os.environ":
                    note(Effect.ENV, node, "subscripts os.environ")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module.mutable_globals
                    ):
                        note(
                            Effect.MUTATES_SHARED,
                            node,
                            f"writes module global {base.id!r}",
                        )
            elif isinstance(node, ast.Global):
                for name in node.names:
                    if name in module.globals_:
                        note(
                            Effect.MUTATES_SHARED,
                            node,
                            f"declares global {name!r} for writing",
                        )
        # Mutating method calls on module globals (``_PROBE.append(...)``).
        for node in ast.walk(function.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in module.mutable_globals
                and node.func.attr
                in {"append", "add", "update", "pop", "clear", "extend", "remove"}
            ):
                note(
                    Effect.MUTATES_SHARED,
                    node,
                    f"mutates module global {node.func.value.id!r} via "
                    f".{node.func.attr}()",
                )
        if effects:
            self.direct[function.qname] = effects
            self._witnesses[function.qname] = witnesses

    # -- fixpoint -----------------------------------------------------------------

    def _propagate(self) -> None:
        for qname in self.graph.edges:
            self.transitive.setdefault(qname, set())
        for qname, effects in self.direct.items():
            self.transitive.setdefault(qname, set()).update(effects)
        # Reverse edges: callee → callers, remembering guardedness.
        callers: dict[str, list[tuple[str, bool]]] = {}
        for site in self.graph.iter_edges():
            if site.callee == UNKNOWN:
                continue
            callers.setdefault(site.callee, []).append((site.caller, site.guarded))
        worklist = list(self.transitive)
        while worklist:
            qname = worklist.pop()
            effects = self.transitive.get(qname, set())
            if not effects:
                continue
            for caller, guarded in callers.get(qname, []):
                inherited = set(effects)
                if guarded:
                    inherited.discard(Effect.TRACE)
                current = self.transitive.setdefault(caller, set())
                if not inherited <= current:
                    current.update(inherited)
                    worklist.append(caller)


def _guarded_line_spans(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[int, int]]:
    """Line ranges of ``if <instrumentation-guard>:`` bodies."""
    from repro.lint.flow.callgraph import is_guard_test

    spans: list[tuple[int, int]] = []
    for node in ast.walk(function):
        if isinstance(node, ast.If) and is_guard_test(node.test) and node.body:
            end = max(
                (getattr(n, "end_lineno", None) or n.lineno) for n in node.body
            )
            spans.append((node.body[0].lineno, end))
    return spans


def iter_effect_names() -> Iterator[str]:
    for effect in Effect:
        yield effect.value
