"""Determinism taint: seed provenance into RNG construction.

Every RNG construction site in the program (``random.Random(...)``,
``numpy.random.default_rng(...)``, ``RandomState(...)``) is classified
by where its seed argument *came from*:

* ``SEEDED`` — a literal, a module-level constant bound to a literal
  (``DEFAULT_SEED``), a parameter named ``seed``/``*_seed``/``rng``
  (the caller owns provenance — the flag moves to *their* construction
  site), or arithmetic composed purely of seeded operands
  (``seed + worker_index * 7919``);
* ``NONDET`` — sourced from wall-clock/entropy (``time.*``,
  ``os.urandom``, ``os.getpid``, ``id()``, ``hash()``, ``uuid*``,
  ``datetime.now``, ``secrets.*``), or simply absent;
* ``UNKNOWN`` — anything else (attribute loads, unannotated calls).
  Unknown is *clean* by design: flagging it would punish every
  pass-through helper.  The imprecision is documented.

``NONDET`` (including the missing-argument case) raises
``flow-unseeded-rng``.  Separately, a function that *accepts* a
``seed`` parameter but never reads it raises ``flow-unused-seed`` —
the call-site promise of determinism is silently dropped.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.lint.flow.index import FunctionInfo, ModuleInfo, ProgramIndex, dotted_name

__all__ = ["RngSite", "Provenance", "TaintAnalysis", "UnusedSeed"]

#: Modules exempt from RNG-construction checks (they *are* the seeding
#: policy; mirrors the syntactic ``unseeded-random`` exemption).
_EXEMPT_MODULES = frozenset({"repro.workloads.seeding"})

#: Callee name tails that construct an RNG.
_RNG_CONSTRUCTOR_TAILS = frozenset({"Random", "default_rng", "RandomState"})

#: Call names (resolved, dotted) whose results are nondeterministic.
_NONDET_CALLS = (
    "time.",
    "os.urandom",
    "os.getpid",
    "uuid.",
    "secrets.",
    "datetime.now",
    "datetime.datetime.now",
    "perf_counter",
    "monotonic",
)

_NONDET_BARE = frozenset({"id", "hash", "perf_counter", "monotonic", "time_ns"})

_SEED_PARAM_NAMES = ("seed", "rng", "base_seed", "worker_seed")


class Provenance(enum.Enum):
    SEEDED = "seeded"
    UNKNOWN = "unknown"
    NONDET = "nondeterministic"


@dataclass(frozen=True)
class RngSite:
    """One RNG construction, with its classified seed provenance."""

    function: str  #: enclosing function qname ("<module>" at top level)
    module: str
    line: int
    col: int
    constructor: str  #: source text of the callee
    provenance: Provenance
    detail: str


@dataclass(frozen=True)
class UnusedSeed:
    function: str
    module: str
    line: int
    col: int
    param: str


@dataclass
class TaintAnalysis:
    index: ProgramIndex
    sites: list[RngSite] = field(default_factory=list)
    unused_seeds: list[UnusedSeed] = field(default_factory=list)

    @classmethod
    def build(cls, index: ProgramIndex) -> "TaintAnalysis":
        analysis = cls(index=index)
        for function in index.iter_functions():
            if function.module in _EXEMPT_MODULES:
                continue
            analysis._scan_function(function)
        return analysis

    # -- per-function scan --------------------------------------------------------

    def _scan_function(self, function: FunctionInfo) -> None:
        module = self.index.modules[function.module]
        seeded_params = _seed_params(function.node)
        seeded_locals = set(seeded_params)
        # Locals assigned from seeded expressions extend the seeded set.
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    provenance, _ = self._classify(
                        node.value, module, seeded_locals
                    )
                    if provenance is Provenance.SEEDED:
                        seeded_locals.add(target.id)
        for node in ast.walk(function.node):
            if isinstance(node, ast.Call):
                self._check_construction(node, function, module, seeded_locals)
        self._check_unused_seed(function, seeded_params)

    def _check_construction(
        self,
        call: ast.Call,
        function: FunctionInfo,
        module: ModuleInfo,
        seeded_locals: set[str],
    ) -> None:
        name = dotted_name(call.func)
        if name is None:
            return
        tail = name.split(".")[-1]
        if tail not in _RNG_CONSTRUCTOR_TAILS:
            return
        seed_arg = _seed_argument(call)
        if seed_arg is None:
            provenance = Provenance.NONDET
            detail = "constructed with no seed argument"
        else:
            provenance, detail = self._classify(seed_arg, module, seeded_locals)
        self.sites.append(
            RngSite(
                function=function.qname,
                module=function.module,
                line=call.lineno,
                col=call.col_offset,
                constructor=name,
                provenance=provenance,
                detail=detail,
            )
        )

    # -- provenance classification ------------------------------------------------

    def _classify(
        self,
        node: ast.expr,
        module: ModuleInfo,
        seeded_locals: set[str],
    ) -> tuple[Provenance, str]:
        if isinstance(node, ast.Constant):
            if node.value is None:
                return Provenance.NONDET, "seed is the literal None"
            return Provenance.SEEDED, f"literal seed {node.value!r}"
        if isinstance(node, ast.Name):
            if node.id in seeded_locals:
                return Provenance.SEEDED, f"seed parameter/local {node.id!r}"
            if self._is_literal_constant(module, node.id):
                return Provenance.SEEDED, f"module constant {node.id!r}"
            resolved = self.index.resolve(module.name, node.id)
            if resolved is not None:
                owner, _, const = resolved.rpartition(".")
                owner_mod = self.index.modules.get(owner)
                if owner_mod is not None and self._is_literal_constant(
                    owner_mod, const
                ):
                    return Provenance.SEEDED, f"imported constant {resolved!r}"
            return Provenance.UNKNOWN, f"untracked name {node.id!r}"
        if isinstance(node, ast.BinOp):
            left, ldetail = self._classify(node.left, module, seeded_locals)
            right, rdetail = self._classify(node.right, module, seeded_locals)
            if Provenance.NONDET in (left, right):
                detail = ldetail if left is Provenance.NONDET else rdetail
                return Provenance.NONDET, f"arithmetic over nondet source: {detail}"
            if left is Provenance.SEEDED and right is Provenance.SEEDED:
                return Provenance.SEEDED, "arithmetic over seeded operands"
            return Provenance.UNKNOWN, "arithmetic with untracked operand"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            resolved = self.index.resolve(module.name, name) or name
            bare = resolved.split(".")[-1]
            if (
                any(resolved.startswith(prefix) for prefix in _NONDET_CALLS)
                or bare in _NONDET_BARE
            ):
                return Provenance.NONDET, f"nondeterministic source {resolved}()"
            return Provenance.UNKNOWN, f"untracked call {name or '<expr>'}()"
        if isinstance(node, ast.Attribute):
            full = dotted_name(node) or node.attr
            if node.attr in _SEED_PARAM_NAMES or node.attr.endswith("_seed"):
                return Provenance.SEEDED, f"seed-bearing attribute {full!r}"
            return Provenance.UNKNOWN, f"untracked attribute {full!r}"
        return Provenance.UNKNOWN, f"untracked expression {type(node).__name__}"

    @staticmethod
    def _is_literal_constant(module: ModuleInfo, name: str) -> bool:
        value = module.globals_.get(name)
        return isinstance(value, ast.Constant) and isinstance(
            value.value, (int, float, str)
        )

    # -- unused seed parameters ---------------------------------------------------

    def _check_unused_seed(
        self, function: FunctionInfo, seeded_params: set[str]
    ) -> None:
        explicit = {
            p
            for p in seeded_params
            if p == "seed" or p.endswith("_seed")
        }
        if not explicit:
            return
        used: set[str] = set()
        for node in ast.walk(function.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
        for param in sorted(explicit - used):
            self.unused_seeds.append(
                UnusedSeed(
                    function=function.qname,
                    module=function.module,
                    line=function.node.lineno,
                    col=function.node.col_offset,
                    param=param,
                )
            )


def _seed_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.arg in _SEED_PARAM_NAMES or arg.arg.endswith("_seed"):
            names.add(arg.arg)
    return names


def _seed_argument(call: ast.Call) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg in {"seed", "x"}:
            return keyword.value
    if call.args:
        return call.args[0]
    return None
