"""Conservative call graph over the program index.

One :class:`CallSite` per resolved (or deliberately widened) call
expression, annotated with the lexical context the effect and lock
analyses need:

* ``guarded`` — the call sits under an instrumentation-active guard
  (``if tracer.enabled:`` / ``if self._tracing:`` / ``if profiling:``),
  so unguarded-tracing effects do not propagate across it;
* ``locked`` — the call sits inside a ``with <lock>:`` block (consumed
  by the lock-discipline analysis for held-lock reachability);
* ``kind`` — ``"call"`` for direct invocation, ``"ref"`` for a function
  reference passed as a value (``functools.partial(f, ...)``, a bound
  method handed to an executor: the callee *may* run, so effects must
  propagate), and ``"spawn"`` for references handed to a thread/task
  spawn primitive (``threading.Thread(target=...)``,
  ``asyncio.to_thread``, ``Executor.submit``) — the roots of the
  concurrent-reachability analysis.

Resolution strategy (in order): local names → import aliases → ``self``
method dispatch through indexed bases → constructor-typed locals and
``self.attr`` receivers → everything else widens to a single
``<unknown>`` node with *no* effects.  Widening to no-effect (rather
than all-effects) keeps the pass usable — the trade-off is spelled out
in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lint.flow.index import (
    ClassInfo,
    FunctionInfo,
    ProgramIndex,
    dotted_name,
)

__all__ = ["CallGraph", "CallSite", "UNKNOWN", "is_guard_test", "is_lock_expression"]

#: The widened callee for calls the resolver cannot pin down.
UNKNOWN = "<unknown>"

#: Spawn primitives whose callable argument becomes a concurrent entry
#: point (thread context; multiprocessing targets get a fresh address
#: space and are deliberately not treated as shared-state threats).
_THREAD_SPAWNERS = frozenset(
    {"to_thread", "run_in_executor", "submit", "Thread", "Timer", "call_soon_threadsafe"}
)


def is_guard_test(test: ast.expr) -> bool:
    """True for conditions gating on tracing/profiling being active.

    Mirrors the syntactic ``hotpath-purity`` guard detection so the
    interprocedural upgrade agrees with the per-file rule about what
    counts as a guard.
    """
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr in {
            "enabled",
            "_tracing",
            "_profiling",
        }:
            return True
        if isinstance(node, ast.Name) and node.id in {
            "tracing",
            "measure",
            "profiling",
        }:
            return True
    return False


def is_lock_expression(item: ast.expr) -> bool:
    """True when a ``with`` item looks like acquiring a lock.

    Covers ``with self._lock:``, ``with self._caches_lock:``, and
    multiprocessing's ``with self._value.get_lock():`` — any name or
    attribute in the expression containing ``lock``.
    """
    for node in ast.walk(item):
        if isinstance(node, ast.Attribute) and "lock" in node.attr.lower():
            return True
        if isinstance(node, ast.Name) and "lock" in node.id.lower():
            return True
    return False


@dataclass(frozen=True)
class CallSite:
    """One call (or callable reference) from ``caller`` to ``callee``."""

    caller: str
    callee: str  #: function qname, or :data:`UNKNOWN`
    line: int
    col: int
    kind: str  #: "call" | "ref" | "spawn"
    guarded: bool
    locked: bool
    lock_name: Optional[str] = None  #: unparsed lock expression, if locked
    display: str = ""  #: source-ish text of the callee for diagnostics


@dataclass
class CallGraph:
    """Edges grouped by caller, plus the concurrent entry-point set."""

    index: ProgramIndex
    edges: dict[str, list[CallSite]] = field(default_factory=dict)
    #: Functions handed to thread-spawn primitives (concurrency roots).
    spawned: set[str] = field(default_factory=set)

    def callees(self, caller: str) -> list[CallSite]:
        return self.edges.get(caller, [])

    def iter_edges(self) -> Iterator[CallSite]:
        for caller in sorted(self.edges):
            yield from self.edges[caller]

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, index: ProgramIndex) -> "CallGraph":
        graph = cls(index=index)
        for function in index.iter_functions():
            _FunctionResolver(index, graph, function).run()
        return graph


class _FunctionResolver:
    """Resolves every call in one function body into call-graph edges."""

    def __init__(
        self, index: ProgramIndex, graph: CallGraph, function: FunctionInfo
    ) -> None:
        self.index = index
        self.graph = graph
        self.function = function
        self.module = index.modules[function.module]
        self.cls: Optional[ClassInfo] = (
            index.classes.get(function.cls) if function.cls else None
        )
        #: Locally-inferred variable types: name → class qname.
        self.local_types: dict[str, str] = {}
        self.edges = graph.edges.setdefault(function.qname, [])

    def run(self) -> None:
        self._infer_parameter_types()
        for statement in self.function.node.body:
            self._walk(statement, guarded=False, locked=False, lock_name=None)

    def _infer_parameter_types(self) -> None:
        args = self.function.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is None:
                continue
            annotation = arg.annotation
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                name: Optional[str] = annotation.value.strip().strip("'\"")
            else:
                name = dotted_name(annotation)
            if name is None:
                continue
            resolved = self.index.resolve(self.function.module, name)
            if resolved is not None and resolved in self.index.classes:
                self.local_types[arg.arg] = resolved

    # -- recursive descent --------------------------------------------------------

    def _walk(
        self,
        node: ast.AST,
        *,
        guarded: bool,
        locked: bool,
        lock_name: Optional[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions get their own resolver pass
        if isinstance(node, ast.If):
            branch_guarded = guarded or is_guard_test(node.test)
            self._scan_expression(node.test, guarded, locked, lock_name)
            for child in node.body:
                self._walk(
                    child, guarded=branch_guarded, locked=locked, lock_name=lock_name
                )
            for child in node.orelse:
                self._walk(child, guarded=guarded, locked=locked, lock_name=lock_name)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            body_locked = locked
            body_lock = lock_name
            for item in node.items:
                if is_lock_expression(item.context_expr):
                    body_locked = True
                    body_lock = ast.unparse(item.context_expr)
                else:
                    # Non-lock context managers still contain calls.
                    self._scan_expression(
                        item.context_expr, guarded, locked, lock_name
                    )
            for child in node.body:
                self._walk(
                    child, guarded=guarded, locked=body_locked, lock_name=body_lock
                )
            return
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            constructed = self._constructed_class(node.value)
            if constructed is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_types[target.id] = constructed
        if isinstance(node, ast.expr):
            self._scan_expression(node, guarded, locked, lock_name)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expression(child, guarded, locked, lock_name)
            else:
                self._walk(child, guarded=guarded, locked=locked, lock_name=lock_name)

    def _scan_expression(
        self,
        node: ast.expr,
        guarded: bool,
        locked: bool,
        lock_name: Optional[str],
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._resolve_call(sub, guarded, locked, lock_name)

    # -- call resolution ----------------------------------------------------------

    def _constructed_class(self, call: ast.Call) -> Optional[str]:
        name = dotted_name(call.func)
        if name is None:
            return None
        resolved = self.index.resolve(self.function.module, name)
        if resolved is not None and resolved in self.index.classes:
            return resolved
        target = self.index.lookup_function(resolved)
        if target is not None:
            returned = target.returns_class()
            if returned is not None:
                resolved_ret = self.index.resolve(target.module, returned)
                if resolved_ret in self.index.classes:
                    return resolved_ret
        return None

    def _resolve_call(
        self,
        call: ast.Call,
        guarded: bool,
        locked: bool,
        lock_name: Optional[str],
    ) -> None:
        display = ast.unparse(call.func)
        callee = self._resolve_callee(call.func)
        spawner = self._spawner_name(call)
        self._add_edge(call, callee, "call", guarded, locked, lock_name, display)
        # Callable references in the arguments: conservatively assume
        # the receiver may invoke them (``ref``), or — for spawn
        # primitives — *will* invoke them concurrently (``spawn``).
        for value in list(call.args) + [kw.value for kw in call.keywords]:
            ref = self._resolve_reference(value)
            if ref is None:
                continue
            kind = "spawn" if spawner else "ref"
            self._add_edge(
                call, ref, kind, guarded, locked, lock_name, ast.unparse(value)
            )
            if kind == "spawn":
                self.graph.spawned.add(ref)

    def _spawner_name(self, call: ast.Call) -> Optional[str]:
        name = dotted_name(call.func)
        if name is None:
            return None
        tail = name.split(".")[-1]
        return tail if tail in _THREAD_SPAWNERS else None

    def _resolve_reference(self, value: ast.expr) -> Optional[str]:
        """A function/method qname when ``value`` references one (no call)."""
        if isinstance(value, ast.Call):
            # functools.partial(f, ...) forwards to f when later invoked.
            name = dotted_name(value.func)
            if name is not None and name.split(".")[-1] == "partial" and value.args:
                return self._resolve_reference(value.args[0])
            return None
        if not isinstance(value, (ast.Name, ast.Attribute)):
            return None
        resolved = self._resolve_callee(value)
        return None if resolved == UNKNOWN else resolved

    def _resolve_callee(self, func: ast.expr) -> str:
        # self.method() → dispatch through the owning class and bases.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.cls is not None
        ):
            method = self.index.find_method(self.cls, func.attr)
            if method is not None:
                return method.qname
            return UNKNOWN
        # self.attr.method() → through the attribute's inferred type.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and self.cls is not None
        ):
            attr_type = self.cls.attr_types.get(func.value.attr)
            target_cls = self.index.lookup_class(attr_type)
            if target_cls is not None:
                method = self.index.find_method(target_cls, func.attr)
                if method is not None:
                    return method.qname
            return UNKNOWN
        # var.method() → through the constructor-typed local.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.local_types
        ):
            target_cls = self.index.lookup_class(self.local_types[func.value.id])
            if target_cls is not None:
                method = self.index.find_method(target_cls, func.attr)
                if method is not None:
                    return method.qname
            return UNKNOWN
        # super().method() → the next indexed base's method.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.cls is not None
        ):
            owner = self.index.modules.get(self.cls.module)
            for base in self.cls.bases:
                resolved = (
                    self.index._resolve_dotted(owner, base)
                    if owner is not None
                    else None
                )
                base_cls = self.index.lookup_class(resolved)
                if base_cls is not None:
                    method = self.index.find_method(base_cls, func.attr)
                    if method is not None:
                        return method.qname
            return UNKNOWN
        # Plain / dotted names through imports and local definitions.
        name = dotted_name(func)
        if name is None:
            return UNKNOWN
        resolved = self.index.resolve(self.function.module, name)
        if resolved is None:
            return name if self._is_external(name) else UNKNOWN
        target = self.index.lookup_function(resolved)
        if target is not None:
            return target.qname
        cls = self.index.lookup_class(resolved)
        if cls is not None:
            init = self.index.find_method(cls, "__init__")
            return init.qname if init is not None else cls.qname
        # Resolved through imports to something outside the program
        # (stdlib, third-party): keep the absolute name — the effect
        # layer pattern-matches on it (os.getenv, random.shuffle, ...).
        return resolved

    @staticmethod
    def _is_external(name: str) -> bool:
        """Dotted names rooted at a known-external module stay as-is."""
        return "." in name

    def _add_edge(
        self,
        node: ast.AST,
        callee: str,
        kind: str,
        guarded: bool,
        locked: bool,
        lock_name: Optional[str],
        display: str,
    ) -> None:
        self.edges.append(
            CallSite(
                caller=self.function.qname,
                callee=callee,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                kind=kind,
                guarded=guarded,
                locked=locked,
                lock_name=lock_name if locked else None,
                display=display,
            )
        )
