"""``repro.lint.flow`` — whole-program analysis under the lint engine.

Layers (each consuming the previous)::

    ProgramIndex   modules, classes, functions, imports, globals
        │
    CallGraph      conservative call/ref/spawn edges, <unknown> widening
        │
    EffectAnalysis direct effect extraction + transitive fixpoint
        │
    LockAnalysis   guarded-by facts, locked-context fixpoint, races
    TaintAnalysis  seed provenance into RNG construction

:class:`FlowProgram` bundles one build of all five for a module set;
the :class:`~repro.lint.flow.rules.FlowRule` subclasses in
:mod:`repro.lint.flow.rules` read it and emit ordinary
:class:`~repro.lint.engine.Finding`\\ s, so the engine's pragma,
selection, and reporting machinery applies unchanged.  See
``docs/static-analysis.md`` for the architecture and the documented
imprecision (unknown-callee widening, unknown-provenance seeds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lint.engine import ModuleSource
from repro.lint.flow.callgraph import UNKNOWN, CallGraph, CallSite
from repro.lint.flow.effects import Effect, EffectAnalysis, Witness
from repro.lint.flow.index import ProgramIndex
from repro.lint.flow.locks import AttrAccess, LockAnalysis
from repro.lint.flow.rules import FLOW_RULES, FlowRule
from repro.lint.flow.taint import Provenance, RngSite, TaintAnalysis

__all__ = [
    "FLOW_RULES",
    "UNKNOWN",
    "AttrAccess",
    "CallGraph",
    "CallSite",
    "Effect",
    "EffectAnalysis",
    "FlowProgram",
    "FlowRule",
    "LockAnalysis",
    "ProgramIndex",
    "Provenance",
    "RngSite",
    "TaintAnalysis",
    "Witness",
    "render_call_graph",
]


@dataclass
class FlowProgram:
    """One whole-program analysis over a fixed set of modules."""

    index: ProgramIndex
    graph: CallGraph
    effects: EffectAnalysis
    locks: LockAnalysis
    taint: TaintAnalysis

    @classmethod
    def build(cls, modules: Sequence[ModuleSource]) -> "FlowProgram":
        index = ProgramIndex(modules)
        graph = CallGraph.build(index)
        effects = EffectAnalysis.build(index, graph)
        locks = LockAnalysis.build(index, graph, effects)
        taint = TaintAnalysis.build(index)
        return cls(
            index=index, graph=graph, effects=effects, locks=locks, taint=taint
        )


def render_call_graph(program: FlowProgram, *, include_unknown: bool = False) -> str:
    """Debug dump for ``repro lint --call-graph``.

    One line per caller with resolved callees, annotated with edge kind
    (``ref``/``spawn``), held-lock and guard context, and the caller's
    inferred transitive effect set.  Unknown-callee edges are summarized
    as a count unless ``include_unknown`` asks for each site.
    """
    lines: list[str] = []
    for caller in sorted(program.graph.edges):
        sites = program.graph.callees(caller)
        effects = sorted(e.value for e in program.effects.effects_of(caller))
        suffix = f"  [{', '.join(effects)}]" if effects else ""
        spawn_mark = " <spawned>" if caller in program.graph.spawned else ""
        lines.append(f"{caller}{spawn_mark}{suffix}")
        unknown = 0
        for site in sites:
            if site.callee == UNKNOWN and not include_unknown:
                unknown += 1
                continue
            tags = []
            if site.kind != "call":
                tags.append(site.kind)
            if site.guarded:
                tags.append("guarded")
            if site.locked:
                tags.append(f"locked:{site.lock_name}")
            tag = f" ({', '.join(tags)})" if tags else ""
            lines.append(f"  -> {site.callee}  @{site.line}{tag}")
        if unknown:
            lines.append(f"  -> {UNKNOWN} x{unknown} (widened)")
    lines.append(
        f"call-graph: {len(program.graph.edges)} function(s), "
        f"{sum(len(v) for v in program.graph.edges.values())} edge(s), "
        f"{len(program.graph.spawned)} spawned entry point(s)"
    )
    return "\n".join(lines)
