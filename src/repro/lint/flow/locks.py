"""Lock-discipline inference: guarded-by facts and race candidates.

Scope: *lock-owning classes* — any class that assigns a
``threading.Lock``/``RLock``/``Condition`` (or similar) to a ``self``
attribute, or whose methods contain a ``with <lock-ish>`` block (this
covers ``SharedBound``'s ``with self._value.get_lock():``).  Owning a
lock is the author's own declaration that instances are shared across
threads, so the discipline applies to every instance attribute of the
class.

The inferred fact is *guarded-by consistency*: if an attribute is ever
accessed under a lock (outside ``__init__``), then **every** access to
it outside ``__init__`` must hold the lock.  Constructor accesses are
exempt — construction happens-before publication.  Private methods
whose every in-program call site already holds the lock are treated as
*locked-context* (computed to a fixpoint), so the common
``_evict_one``-style split of a locked public method into private
helpers does not generate noise.

Also computed here, because they need the same held-lock context:

* blocking (IO-effect) calls made while a lock is held;
* writes to module-level mutable globals reachable from a thread-spawn
  entry point (``asyncio.to_thread``, ``Thread(target=...)``, ...).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lint.flow.callgraph import (
    UNKNOWN,
    CallGraph,
    CallSite,
    is_lock_expression,
)
from repro.lint.flow.effects import Effect, EffectAnalysis, Witness
from repro.lint.flow.index import ClassInfo, FunctionInfo, ProgramIndex

__all__ = ["AttrAccess", "LockAnalysis"]

#: Methods exempt from guarded-by checks: they run before the instance
#: is published (or during interpreter teardown).
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__", "__new__"})

#: Attribute-method calls that mutate the receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "extend",
        "remove",
        "discard",
        "insert",
        "setdefault",
        "move_to_end",
        "inc",
        "observe",
        "record",
        "store",
        "tighten",
    }
)


@dataclass(frozen=True)
class AttrAccess:
    """One read or write of ``self.<attr>`` inside a method body."""

    cls: str  #: owning class qname
    attr: str
    method: str  #: method qname
    line: int
    col: int
    kind: str  #: "read" | "write"
    locked: bool
    lock_name: Optional[str]


@dataclass
class LockAnalysis:
    index: ProgramIndex
    graph: CallGraph
    effects: EffectAnalysis
    #: (class qname, attr) → accesses, in deterministic order.
    accesses: dict[tuple[str, str], list[AttrAccess]] = field(default_factory=dict)
    #: Methods whose every in-program call site holds a lock.
    locked_context: set[str] = field(default_factory=set)
    #: Lock-owning classes in scope for the discipline.
    lock_owners: list[str] = field(default_factory=list)

    @classmethod
    def build(
        cls, index: ProgramIndex, graph: CallGraph, effects: EffectAnalysis
    ) -> "LockAnalysis":
        analysis = cls(index=index, graph=graph, effects=effects)
        analysis.lock_owners = sorted(
            info.qname for info in index.iter_classes() if _owns_lock(info)
        )
        analysis._compute_locked_context()
        for qname in analysis.lock_owners:
            analysis._collect_accesses(index.classes[qname])
        return analysis

    # -- locked-context fixpoint --------------------------------------------------

    def _compute_locked_context(self) -> None:
        owners = {qname for qname in self.lock_owners}
        incoming: dict[str, list[CallSite]] = {}
        for site in self.graph.iter_edges():
            if site.callee != UNKNOWN:
                incoming.setdefault(site.callee, []).append(site)
        candidates = [
            method
            for owner in sorted(owners)
            for method in self.index.classes[owner].methods.values()
            if method.is_private and method.name not in _EXEMPT_METHODS
        ]
        changed = True
        while changed:
            changed = False
            for method in candidates:
                if method.qname in self.locked_context:
                    continue
                sites = incoming.get(method.qname, [])
                if not sites:
                    continue
                if all(
                    site.locked or site.caller in self.locked_context
                    for site in sites
                ):
                    self.locked_context.add(method.qname)
                    changed = True

    # -- access collection --------------------------------------------------------

    def _collect_accesses(self, info: ClassInfo) -> None:
        for method in info.methods.values():
            if method.name in _EXEMPT_METHODS:
                continue
            walker = _AccessWalker(
                self.index,
                info,
                method,
                base_locked=method.qname in self.locked_context,
            )
            walker.run()
            for access in walker.accesses:
                self.accesses.setdefault((info.qname, access.attr), []).append(
                    access
                )

    # -- race candidates ----------------------------------------------------------

    def iter_inconsistent(self) -> Iterator[tuple[str, str, list[AttrAccess]]]:
        """Attributes with ≥1 locked access and ≥1 unlocked access."""
        for (cls_name, attr), accesses in sorted(self.accesses.items()):
            if attr in self.index.classes[cls_name].lock_attrs:
                continue
            if any(a.locked for a in accesses) and any(
                not a.locked for a in accesses
            ):
                yield cls_name, attr, accesses

    def iter_guard_conflicts(self) -> Iterator[tuple[str, str, list[AttrAccess]]]:
        """Attributes guarded by two *different* locks in different places."""
        for (cls_name, attr), accesses in sorted(self.accesses.items()):
            names = {
                a.lock_name
                for a in accesses
                if a.locked and a.lock_name and a.lock_name != "<caller>"
            }
            if len(names) > 1:
                yield cls_name, attr, accesses

    def iter_blocking_under_lock(self) -> Iterator[CallSite]:
        """Held-lock call sites whose callee transitively performs IO."""
        for site in self.graph.iter_edges():
            if not site.locked or site.callee == UNKNOWN:
                continue
            if Effect.IO in self.effects.effects_of(site.callee):
                yield site

    def iter_concurrent_global_writes(
        self,
    ) -> Iterator[tuple[str, Witness, tuple[str, ...]]]:
        """(entry, witness, path) for global writes reachable from spawns."""
        for entry in sorted(self.graph.spawned):
            if Effect.MUTATES_SHARED not in self.effects.effects_of(entry):
                continue
            witness = self.effects.witness(entry, Effect.MUTATES_SHARED)
            if witness is not None:
                yield entry, witness, witness.path


def _owns_lock(info: ClassInfo) -> bool:
    if info.lock_attrs:
        return True
    for method in info.methods.values():
        for node in ast.walk(method.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(is_lock_expression(item.context_expr) for item in node.items):
                    return True
    return False


class _AccessWalker:
    """Collects ``self.<attr>`` accesses with their held-lock context."""

    def __init__(
        self,
        index: ProgramIndex,
        cls: ClassInfo,
        method: FunctionInfo,
        *,
        base_locked: bool,
    ) -> None:
        self.index = index
        self.cls = cls
        self.method = method
        self.base_locked = base_locked
        self.accesses: list[AttrAccess] = []

    def run(self) -> None:
        for statement in self.method.node.body:
            self._walk(
                statement,
                locked=self.base_locked,
                lock_name="<caller>" if self.base_locked else None,
            )

    def _walk(
        self, node: ast.AST, *, locked: bool, lock_name: Optional[str]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            body_locked = locked
            body_lock = lock_name
            for item in node.items:
                if is_lock_expression(item.context_expr):
                    body_locked = True
                    body_lock = ast.unparse(item.context_expr)
                else:
                    self._scan(item.context_expr, locked=locked, lock_name=lock_name)
            for child in node.body:
                self._walk(child, locked=body_locked, lock_name=body_lock)
            return
        if isinstance(node, ast.If):
            # ``if self._tracing:`` style guards don't change lock state,
            # but the test expression itself is an access.
            self._scan(node.test, locked=locked, lock_name=lock_name)
            for child in node.body + node.orelse:
                self._walk(child, locked=locked, lock_name=lock_name)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                targets = [node.target]
            for target in targets:
                self._scan_target(target, locked=locked, lock_name=lock_name)
            if node.value is not None:
                self._scan(node.value, locked=locked, lock_name=lock_name)
            return
        if isinstance(node, ast.expr):
            self._scan(node, locked=locked, lock_name=lock_name)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan(child, locked=locked, lock_name=lock_name)
            else:
                self._walk(child, locked=locked, lock_name=lock_name)

    # -- expression-level scanning ------------------------------------------------

    def _scan_target(
        self, target: ast.expr, *, locked: bool, lock_name: Optional[str]
    ) -> None:
        """Assignment target: the written base attribute is a write."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element, locked=locked, lock_name=lock_name)
            return
        base = target
        while isinstance(base, ast.Subscript):
            # ``self._plans[key] = ...`` writes through self._plans
            self._scan(base.slice, locked=locked, lock_name=lock_name)
            base = base.value
        attr = self._self_attr(base)
        if attr is not None:
            self._note(base, attr, "write", locked, lock_name)
        else:
            self._scan(target, locked=locked, lock_name=lock_name)

    def _scan(
        self, node: ast.expr, *, locked: bool, lock_name: Optional[str]
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                attr = self._self_attr(sub.func.value)
                if attr is not None and sub.func.attr in _MUTATOR_METHODS:
                    self._note(sub.func, attr, "write", locked, lock_name)
                    continue
            if isinstance(sub, ast.Attribute):
                attr = self._self_attr(sub)
                if attr is not None:
                    self._note(sub, attr, "read", locked, lock_name)

    def _self_attr(self, node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _note(
        self,
        node: ast.AST,
        attr: str,
        kind: str,
        locked: bool,
        lock_name: Optional[str],
    ) -> None:
        if attr in self.cls.lock_attrs or "lock" in attr.lower():
            return  # accessing the lock itself is how you lock
        if self.index.find_method(self.cls, attr) is not None:
            return  # method reference, not shared data (the call graph has it)
        self.accesses.append(
            AttrAccess(
                cls=self.cls.qname,
                attr=attr,
                method=self.method.qname,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                kind=kind,
                locked=locked,
                lock_name=lock_name,
            )
        )
