"""Flow rules: whole-program findings surfaced through the lint engine.

Every rule here subclasses :class:`FlowRule`, which plugs into the
engine's two-phase protocol: the engine materializes all modules of the
run, hands them to :meth:`FlowRule.prepare` (building one shared
:class:`~repro.lint.flow.FlowProgram` for all flow rules), and then the
usual per-module ``check`` replays each rule's precomputed findings for
that file — so pragma suppression, ``--select``, sorting, and every
reporter work on flow findings exactly as on syntactic ones.

Finding-kind catalog (12):

====================  ========  ===================================================
``flow-hotpath-io``        error  IO reachable from a hot-path function
``flow-hotpath-env``       error  env read reachable from a hot-path function
``flow-hotpath-random``    error  process-global RNG reachable from a hot path
``flow-hotpath-trace``     error  unguarded trace emission one-or-more calls deep
``flow-hotpath-alloc``   warning  set allocation in a helper reached from a hot path
``flow-unguarded-read``    error  lock-guarded attribute read without the lock
``flow-unguarded-write``   error  lock-guarded attribute written without the lock
``flow-guard-inconsistent``error  attribute guarded by two different locks
``flow-blocking-under-lock`` warn IO performed while holding a lock
``flow-unseeded-rng``      error  RNG constructed from a nondeterministic seed
``flow-unused-seed``     warning  ``seed`` parameter accepted but never read
``flow-concurrent-global-write`` error  module global written from spawned thread
====================  ========  ===================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.lint.engine import ERROR, WARNING, Finding, ModuleSource, Rule
from repro.lint.flow.effects import Effect, Witness

if TYPE_CHECKING:
    from repro.lint.flow import FlowProgram

__all__ = ["FLOW_RULES", "FlowRule"]

#: Module prefixes forming the enumeration hot path (mirrors the
#: syntactic ``hotpath-purity`` scope).
_HOT_PREFIXES = ("repro.enumerator", "repro.partition", "repro.fastpath", "repro.anytime")

#: Hot-scope modules exempt from effect checks: the fast-path *detection*
#: shim exists to read the environment and probe optional imports.
_HOT_EXEMPT_MODULES = frozenset({"repro.fastpath.detect"})

#: Function names off the hot path by construction (setup/rendering).
_COLD_FUNCTIONS = frozenset(
    {"__init__", "__repr__", "__str__", "describe", "summary", "to_dict", "token"}
)


def _is_hot(module: str, name: str) -> bool:
    if module in _HOT_EXEMPT_MODULES:
        return False
    if name in _COLD_FUNCTIONS or name.startswith("render"):
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _HOT_PREFIXES
    )


def _chain(witness: Witness) -> str:
    """Render a witness call chain for the finding message."""
    if not witness.path:
        return "directly"
    return "via " + " -> ".join(witness.path)


class FlowRule(Rule):
    """Base for whole-program rules: prepared once, replayed per module.

    The engine detects :attr:`needs_program` and calls :meth:`prepare`
    with every module of the run (plus the shared program built by the
    first flow rule, so the index/call-graph/effect fixpoint is computed
    once per run, not once per rule).
    """

    needs_program = True

    def __init__(self) -> None:
        self._program: Optional["FlowProgram"] = None
        self._findings: Optional[list[Finding]] = None

    def prepare(
        self,
        modules: Sequence[ModuleSource],
        program: Optional["FlowProgram"],
    ) -> "FlowProgram":
        from repro.lint.flow import FlowProgram

        if program is None:
            program = FlowProgram.build(modules)
        self._program = program
        self._findings = None
        return program

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if self._program is None:
            # No prepare phase (rule invoked standalone): build a
            # single-module program so direct use keeps working.
            self.prepare([module], None)
        if self._findings is None:
            assert self._program is not None
            self._findings = list(self.collect(self._program))
        for finding in self._findings:
            if finding.path == module.path:
                yield finding

    def collect(self, program: "FlowProgram") -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------------

    def _finding_at(
        self, program: "FlowProgram", qname: str, line: int, message: str
    ) -> Optional[Finding]:
        function = program.index.lookup_function(qname)
        if function is None:
            return None
        return function.source.finding(self, line, message)


class _HotPathEffectRule(FlowRule):
    """Shared machinery: flag one effect reaching hot-path functions."""

    effect: Effect
    #: When True, only call-deep violations are reported (the direct
    #: site is the syntactic rule's jurisdiction).
    transitive_only = False

    def collect(self, program: "FlowProgram") -> Iterator[Finding]:
        for function in program.index.iter_functions():
            if not _is_hot(function.module, function.name):
                continue
            if self.effect not in program.effects.effects_of(function.qname):
                continue
            if (
                self.transitive_only
                and self.effect in program.effects.direct_effects_of(function.qname)
            ):
                continue
            witness = program.effects.witness(function.qname, self.effect)
            if witness is None:
                continue
            if witness.qname.rpartition(".")[0] in _HOT_EXEMPT_MODULES or (
                witness.qname.startswith("repro.fastpath.detect.")
            ):
                continue
            line = (
                witness.line
                if not witness.path and witness.qname == function.qname
                else function.node.lineno
            )
            finding = self._finding_at(
                program,
                function.qname,
                line,
                f"hot-path function {function.qname} {self.describe_effect()} "
                f"{_chain(witness)}: {witness.detail} "
                f"({witness.qname} line {witness.line})",
            )
            if finding is not None:
                yield finding

    def describe_effect(self) -> str:
        raise NotImplementedError


class HotPathIORule(_HotPathEffectRule):
    name = "flow-hotpath-io"
    severity = ERROR
    effect = Effect.IO
    description = (
        "IO (open/print/filesystem/subprocess) reachable from an "
        "enumeration hot-path function through the call graph"
    )

    def describe_effect(self) -> str:
        return "performs IO"


class HotPathEnvRule(_HotPathEffectRule):
    name = "flow-hotpath-env"
    severity = ERROR
    effect = Effect.ENV
    description = (
        "os.environ/os.getenv read reachable from an enumeration "
        "hot-path function; environment reads belong in setup"
    )

    def describe_effect(self) -> str:
        return "reads the environment"


class HotPathRandomRule(_HotPathEffectRule):
    name = "flow-hotpath-random"
    severity = ERROR
    effect = Effect.RANDOM
    description = (
        "process-global random.* use reachable from an enumeration "
        "hot-path function; only seeded Random instances are deterministic"
    )

    def describe_effect(self) -> str:
        return "draws from the process-global RNG"


class HotPathTraceRule(_HotPathEffectRule):
    name = "flow-hotpath-trace"
    severity = ERROR
    effect = Effect.TRACE
    transitive_only = True  # direct sites are hotpath-purity's job
    description = (
        "unguarded tracer/profiler/metrics emission reached from a "
        "hot-path function one or more calls deep (the syntactic "
        "hotpath-purity rule only sees the direct site)"
    )

    def describe_effect(self) -> str:
        return "emits unguarded instrumentation"


class HotPathAllocRule(_HotPathEffectRule):
    name = "flow-hotpath-alloc"
    severity = WARNING
    effect = Effect.ALLOC
    transitive_only = True  # direct sites are the bitset rules' job
    description = (
        "set allocation inside a helper reached from a hot-path "
        "function; the Section 3.1 bitmap discipline leaks one call deep"
    )

    def describe_effect(self) -> str:
        return "allocates a set"


class UnguardedReadRule(FlowRule):
    name = "flow-unguarded-read"
    severity = ERROR
    description = (
        "attribute of a lock-owning class read without the lock that "
        "guards it elsewhere (torn/stale read under concurrency)"
    )

    kind = "read"
    verb = "read"

    def collect(self, program: "FlowProgram") -> Iterator[Finding]:
        for cls_name, attr, accesses in program.locks.iter_inconsistent():
            locked_count = sum(1 for a in accesses if a.locked)
            for access in accesses:
                if access.locked or access.kind != self.kind:
                    continue
                finding = self._finding_at(
                    program,
                    access.method,
                    access.line,
                    f"{cls_name}.{attr} is {self.verb} without a lock here "
                    f"but accessed under a lock at {locked_count} other "
                    f"site(s); hold the guarding lock or pragma with the "
                    f"safety argument",
                )
                if finding is not None:
                    yield finding


class UnguardedWriteRule(UnguardedReadRule):
    name = "flow-unguarded-write"
    severity = ERROR
    description = (
        "attribute of a lock-owning class written without the lock that "
        "guards it elsewhere (lost update under concurrency)"
    )

    kind = "write"
    verb = "written"


class GuardInconsistentRule(FlowRule):
    name = "flow-guard-inconsistent"
    severity = ERROR
    description = (
        "attribute guarded by two different locks at different sites; "
        "split-lock guarding protects nothing"
    )

    def collect(self, program: "FlowProgram") -> Iterator[Finding]:
        for cls_name, attr, accesses in program.locks.iter_guard_conflicts():
            names = sorted(
                {
                    a.lock_name
                    for a in accesses
                    if a.locked and a.lock_name and a.lock_name != "<caller>"
                }
            )
            first = min(
                (a for a in accesses if a.locked and a.lock_name in names),
                key=lambda a: (a.line, a.col),
            )
            finding = self._finding_at(
                program,
                first.method,
                first.line,
                f"{cls_name}.{attr} is guarded by {len(names)} different "
                f"locks ({', '.join(names)}); pick one lock per attribute",
            )
            if finding is not None:
                yield finding


class BlockingUnderLockRule(FlowRule):
    name = "flow-blocking-under-lock"
    severity = WARNING
    description = (
        "call that transitively performs IO made while holding a lock; "
        "blocking under a lock serializes every other thread"
    )

    def collect(self, program: "FlowProgram") -> Iterator[Finding]:
        for site in program.locks.iter_blocking_under_lock():
            finding = self._finding_at(
                program,
                site.caller,
                site.line,
                f"{site.display}() performs IO while {site.caller} holds "
                f"{site.lock_name or 'a lock'}; move the IO outside the "
                f"critical section",
            )
            if finding is not None:
                yield finding


class UnseededRngRule(FlowRule):
    name = "flow-unseeded-rng"
    severity = ERROR
    description = (
        "RNG constructed with no seed or a nondeterministic seed "
        "(time/pid/entropy); seed provenance must trace to DEFAULT_SEED, "
        "a literal, or a seed parameter"
    )

    def collect(self, program: "FlowProgram") -> Iterator[Finding]:
        for site in program.taint.sites:
            if site.provenance.value != "nondeterministic":
                continue
            finding = self._finding_at(
                program,
                site.function,
                site.line,
                f"{site.constructor}() in {site.function}: {site.detail}; "
                f"thread the seed from DEFAULT_SEED or a seed parameter",
            )
            if finding is not None:
                yield finding


class UnusedSeedRule(FlowRule):
    name = "flow-unused-seed"
    severity = WARNING
    description = (
        "function accepts a seed parameter but never reads it; the "
        "caller's determinism promise is silently dropped"
    )

    def collect(self, program: "FlowProgram") -> Iterator[Finding]:
        for unused in program.taint.unused_seeds:
            finding = self._finding_at(
                program,
                unused.function,
                unused.line,
                f"{unused.function} accepts {unused.param!r} but never "
                f"uses it; wire it into RNG construction or drop the "
                f"parameter",
            )
            if finding is not None:
                yield finding


class ConcurrentGlobalWriteRule(FlowRule):
    name = "flow-concurrent-global-write"
    severity = ERROR
    description = (
        "module-level mutable global written by code reachable from a "
        "thread-spawn entry point (Thread(target=...)/to_thread/submit)"
    )

    def collect(self, program: "FlowProgram") -> Iterator[Finding]:
        for entry, witness, _ in program.locks.iter_concurrent_global_writes():
            target = self._finding_at(
                program,
                witness.qname,
                witness.line,
                f"{witness.detail} and is reachable from spawned thread "
                f"entry {entry} ({_chain(witness)}); guard it with a lock "
                f"or make it immutable",
            )
            if target is not None:
                yield target


#: Every flow rule, in catalog order (effects, locks, taint).
FLOW_RULES: tuple[Rule, ...] = (
    HotPathIORule(),
    HotPathEnvRule(),
    HotPathRandomRule(),
    HotPathTraceRule(),
    HotPathAllocRule(),
    UnguardedReadRule(),
    UnguardedWriteRule(),
    GuardInconsistentRule(),
    BlockingUnderLockRule(),
    UnseededRngRule(),
    UnusedSeedRule(),
    ConcurrentGlobalWriteRule(),
)
