"""Whole-program index: modules, classes, functions, imports, globals.

The per-file rules in :mod:`repro.lint.rules` see one ``ast.Module`` at a
time; everything in :mod:`repro.lint.flow` instead starts from this
index, which is built once per lint run over *all* parsed modules and
answers the questions cross-module analysis needs:

* what function/class does a dotted name resolve to, given one module's
  import aliases (``resolve``);
* what methods does a class have, including through indexed base classes
  (``iter_methods``);
* what type does ``self.attr`` have, when an ``__init__`` (or any
  method) assigns it from an indexed constructor or an annotated call
  (``ClassInfo.attr_types``);
* which module-level names are mutable bindings (the shared-state
  surface of :class:`~repro.lint.flow.effects` and the race detector).

Resolution is deliberately *conservative name resolution*, not type
inference: anything it cannot pin to an indexed definition stays
unresolved and is widened at the call-graph layer (see
``docs/static-analysis.md`` for the precision contract).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.lint.engine import ModuleSource

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramIndex",
    "dotted_name",
]

#: Constructors of lock-like synchronization objects (``locks.py`` seeds
#: guard inference from attributes assigned one of these).
LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Mutable builtin constructors: a module-level name bound to one of
#: these is shared mutable state when reached from concurrent code.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
)


def dotted_name(node: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str  #: e.g. ``repro.memo.MemoTable.get``
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: ModuleSource
    cls: Optional[str] = None  #: owning class qname, or None

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    @property
    def is_private(self) -> bool:
        return self.name.startswith("_") and not self.name.startswith("__")

    def returns_class(self) -> Optional[str]:
        """The dotted name in the return annotation, if it is one."""
        annotation = self.node.returns
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            text = annotation.value.strip().strip("'\"")
            return text or None
        return dotted_name(annotation)


@dataclass
class ClassInfo:
    """One class definition with its methods and inferred attribute types."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    source: ModuleSource
    bases: list[str] = field(default_factory=list)  #: dotted base names
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.X = Constructor(...)`` / ``self.X: T`` → dotted type name.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: Attributes assigned a ``threading.Lock``-like object.
    lock_attrs: set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One module's definitions and import environment."""

    name: str
    source: ModuleSource
    #: local alias → dotted target (``from x import y as z`` → z: x.y).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level simple assignments: name → value expression.
    globals_: dict[str, ast.expr] = field(default_factory=dict)
    #: module-level names bound to mutable containers.
    mutable_globals: set[str] = field(default_factory=set)


class ProgramIndex:
    """Cross-module symbol table over one set of parsed modules."""

    def __init__(self, modules: Iterable[ModuleSource]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for source in modules:
            info = self._index_module(source)
            self.modules[info.name] = info

    # -- construction ------------------------------------------------------------

    def _index_module(self, source: ModuleSource) -> ModuleInfo:
        info = ModuleInfo(name=source.module, source=source)
        for node in source.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(info, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                function = FunctionInfo(
                    qname=f"{info.name}.{node.name}",
                    module=info.name,
                    name=node.name,
                    node=node,
                    source=source,
                )
                info.functions[node.name] = function
                self.functions[function.qname] = function
            elif isinstance(node, ast.ClassDef):
                cls = self._index_class(info, node, source)
                info.classes[node.name] = cls
                self.classes[cls.qname] = cls
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    info.globals_[target.id] = node.value
                    if self._is_mutable_binding(node.value):
                        info.mutable_globals.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    info.globals_[node.target.id] = node.value
                    if self._is_mutable_binding(node.value):
                        info.mutable_globals.add(node.target.id)
        return info

    @staticmethod
    def _index_import(info: ModuleInfo, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = target
                # `import a.b` also makes `a.b` reachable through `a`.
                if alias.asname is None and "." in alias.name:
                    info.imports[alias.name] = alias.name
            return
        base = node.module or ""
        if node.level:  # relative import: resolve within this package
            parts = info.name.split(".")
            parts = parts[: len(parts) - node.level]
            base = ".".join(parts + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            info.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _index_class(
        self, info: ModuleInfo, node: ast.ClassDef, source: ModuleSource
    ) -> ClassInfo:
        cls = ClassInfo(
            qname=f"{info.name}.{node.name}",
            module=info.name,
            name=node.name,
            node=node,
            source=source,
        )
        for base in node.bases:
            name = dotted_name(base)
            if name is not None:
                cls.bases.append(name)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qname=f"{cls.qname}.{child.name}",
                    module=info.name,
                    name=child.name,
                    node=child,
                    source=source,
                    cls=cls.qname,
                )
                cls.methods[child.name] = method
                self.functions[method.qname] = method
                self._scan_self_assignments(info, cls, child)
        return cls

    def _scan_self_assignments(
        self,
        info: ModuleInfo,
        cls: ClassInfo,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        """Record ``self.X = ...`` attribute types and lock attributes."""
        for node in ast.walk(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            if isinstance(node, ast.AnnAssign) and node.annotation is not None:
                annotated = dotted_name(node.annotation)
                if annotated is not None:
                    cls.attr_types.setdefault(attr, annotated)
            if value is None or not isinstance(value, ast.Call):
                continue
            callee = dotted_name(value.func)
            if callee is None:
                continue
            resolved = self._resolve_dotted(info, callee) or callee
            if resolved in LOCK_CONSTRUCTORS or (
                resolved.split(".")[-1] in {"Lock", "RLock", "Condition"}
            ):
                cls.lock_attrs.add(attr)
                continue
            constructed = self.lookup_class(resolved)
            if constructed is not None:
                cls.attr_types.setdefault(attr, constructed.qname)
            else:
                callee_fn = self.functions.get(resolved)
                if callee_fn is not None:
                    returned = callee_fn.returns_class()
                    if returned is not None:
                        owner = self.modules.get(callee_fn.module)
                        resolved_ret = (
                            self._resolve_dotted(owner, returned)
                            if owner is not None
                            else None
                        )
                        if resolved_ret is not None and resolved_ret in self.classes:
                            cls.attr_types.setdefault(attr, resolved_ret)

    @staticmethod
    def _is_mutable_binding(value: ast.expr) -> bool:
        if isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None and callee.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
                return True
        return False

    # -- resolution --------------------------------------------------------------

    def _resolve_dotted(
        self, info: Optional[ModuleInfo], name: str
    ) -> Optional[str]:
        """Resolve a dotted name seen in ``info`` to an absolute dotted name.

        Follows one import-alias hop (``head`` or the full name), then
        leaves the remainder attached.  Returns ``None`` when the head is
        neither a local definition nor an imported alias.
        """
        if info is None:
            return None
        if name in info.imports:
            return info.imports[name]
        head, _, rest = name.partition(".")
        if head in info.classes:
            base = info.classes[head].qname
        elif head in info.functions:
            base = info.functions[head].qname
        elif head in info.imports:
            base = info.imports[head]
        else:
            return None
        return f"{base}.{rest}" if rest else base

    def resolve(self, module_name: str, name: str) -> Optional[str]:
        """Absolute dotted name for ``name`` as written in ``module_name``."""
        return self._resolve_dotted(self.modules.get(module_name), name)

    def lookup_function(self, qname: Optional[str]) -> Optional[FunctionInfo]:
        """An indexed function/method for an absolute dotted name.

        Accepts both direct function qnames and ``Class.method`` paths
        spelled through the class (``repro.memo.MemoTable.get``).
        """
        if qname is None:
            return None
        direct = self.functions.get(qname)
        if direct is not None:
            return direct
        owner, _, attr = qname.rpartition(".")
        cls = self.classes.get(owner)
        if cls is not None:
            return self.find_method(cls, attr)
        return None

    def lookup_class(self, qname: Optional[str]) -> Optional[ClassInfo]:
        if qname is None:
            return None
        return self.classes.get(qname)

    def find_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Resolve a method through the class and its indexed bases."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qname in seen:
                continue
            seen.add(current.qname)
            method = current.methods.get(name)
            if method is not None:
                return method
            owner = self.modules.get(current.module)
            for base in current.bases:
                resolved = self._resolve_dotted(owner, base)
                base_cls = self.classes.get(resolved) if resolved else None
                if base_cls is not None:
                    stack.append(base_cls)
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.functions):
            yield self.functions[qname]

    def iter_classes(self) -> Iterator[ClassInfo]:
        for qname in sorted(self.classes):
            yield self.classes[qname]
