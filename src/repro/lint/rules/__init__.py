"""Rule registry: every built-in rule, instantiated once.

Adding a rule = subclass :class:`repro.lint.engine.Rule` in one of the
rule modules (or a new one) and list an instance here; the CLI, the JSON
reporter, ``--select``/``--ignore`` validation, and the documentation
catalog all read this tuple.
"""

from __future__ import annotations

from repro.lint.engine import Rule
from repro.lint.flow.rules import FLOW_RULES
from repro.lint.rules.bitset import (
    BinPopcountRule,
    BitsetMaterializationRule,
    PerBitLoopRule,
)
from repro.lint.rules.determinism import (
    IdentityOrderingRule,
    SetIterationOrderRule,
    UnseededRandomRule,
)
from repro.lint.rules.fastpath import FastpathGuardRule
from repro.lint.rules.hotpath import HotPathPurityRule
from repro.lint.rules.layering import LAYERS, ImportLayeringRule
from repro.lint.rules.metrics import InstrumentNameRule, MetricsFieldRule

__all__ = ["ALL_RULES", "FLOW_RULES", "LAYERS", "SYNTACTIC_RULES", "rule_by_name"]

#: The per-file AST rules, in catalog order (determinism, bitset, hot
#: path, fast path, metrics, layering).
SYNTACTIC_RULES: tuple[Rule, ...] = (
    UnseededRandomRule(),
    SetIterationOrderRule(),
    IdentityOrderingRule(),
    BinPopcountRule(),
    BitsetMaterializationRule(),
    PerBitLoopRule(),
    HotPathPurityRule(),
    FastpathGuardRule(),
    MetricsFieldRule(),
    InstrumentNameRule(),
    ImportLayeringRule(),
)

#: Every built-in rule: syntactic first, then the whole-program flow
#: rules (``flow-*``), which the engine runs through a prepare phase.
ALL_RULES: tuple[Rule, ...] = SYNTACTIC_RULES + FLOW_RULES


def rule_by_name(name: str) -> Rule:
    """Look up a built-in rule; raises ``KeyError`` on unknown names."""
    for rule in ALL_RULES:
        if rule.name == name:
            return rule
    raise KeyError(name)
