"""Bitset-discipline rules for the Section 3.1 bitmap model.

The paper's complexity analysis assumes vertex sets are machine words and
set operations are single bitwise instructions.  The core and partition
packages carry that assumption; materializing masks into Python sets or
walking bits with per-element ``range`` loops silently re-introduces the
linear factors the analysis excludes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ERROR, WARNING, Finding, ModuleSource, Rule

__all__ = ["BinPopcountRule", "BitsetMaterializationRule", "PerBitLoopRule"]


def _call_name(node: ast.expr) -> str | None:
    """Name of a direct ``name(...)`` call, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


class BinPopcountRule(Rule):
    """Use ``int.bit_count()`` (or ``popcount``), never ``bin(x).count``.

    ``bin(x).count("1")`` allocates a string per call in what is usually a
    per-partition hot loop; ``x.bit_count()`` is a single CPython opcode.
    """

    name = "bin-popcount"
    severity = ERROR
    description = 'bin(x).count("1") instead of int.bit_count()/popcount'

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "count"
            ):
                continue
            receiver = node.func.value
            if _call_name(receiver) == "bin" or (
                _call_name(receiver) == "format"
                and len(receiver.args) == 2  # type: ignore[union-attr]
            ):
                yield module.finding(
                    self,
                    node,
                    "string-formatting popcount allocates per call; use "
                    "mask.bit_count() (repro.core.bitset.popcount)",
                )


class BitsetMaterializationRule(Rule):
    """No materializing bitsets into Python sets/lists in core/partition.

    Flags ``set(iter_bits(m))`` / ``frozenset(iter_bits(m))`` (the mask
    already *is* that set), ``len(list(iter_bits(m)))`` / ``len(set_of(m))``
    (that is ``popcount``), and ``v in set_of(m)`` membership tests (that
    is ``m >> v & 1``).  ``set_of``/``iter_bits`` remain fine at API
    boundaries — returning them, yielding from them, or sorting them.
    """

    name = "bitset-materialization"
    severity = ERROR
    description = "bitset materialized into a Python container for set ops"
    scope = ("repro.core", "repro.partition")

    _MASK_ITERATORS = frozenset({"iter_bits", "set_of"})

    def _is_mask_iteration(self, node: ast.expr) -> bool:
        return _call_name(node) in self._MASK_ITERATORS

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if (
                    name in {"set", "frozenset"}
                    and node.args
                    and self._is_mask_iteration(node.args[0])
                ):
                    yield module.finding(
                        self,
                        node,
                        f"{name}(iter_bits(...)) rebuilds the set the mask "
                        "already encodes; keep the int mask",
                    )
                elif name == "len" and node.args:
                    inner = node.args[0]
                    if self._is_mask_iteration(inner) or (
                        _call_name(inner) in {"list", "set", "tuple"}
                        and inner.args  # type: ignore[union-attr]
                        and self._is_mask_iteration(inner.args[0])  # type: ignore[union-attr]
                    ):
                        yield module.finding(
                            self,
                            node,
                            "len() over a materialized bitset is "
                            "popcount; use mask.bit_count()",
                        )
            elif isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if isinstance(op, (ast.In, ast.NotIn)) and (
                        self._is_mask_iteration(comparator)
                    ):
                        yield module.finding(
                            self,
                            comparator,
                            "membership in set_of(mask) is a bit test; "
                            "use mask >> v & 1",
                        )


def _shift_test_uses(node: ast.expr, loop_var: str) -> bool:
    """True if ``node`` contains the ``mask >> v & 1`` bit-probe pattern."""
    for sub in ast.walk(node):
        if not (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.BitAnd)):
            continue
        shift = sub.left if isinstance(sub.left, ast.BinOp) else sub.right
        if not (isinstance(shift, ast.BinOp) and isinstance(shift.op, ast.RShift)):
            continue
        if isinstance(shift.right, ast.Name) and shift.right.id == loop_var:
            return True
    return False


class PerBitLoopRule(Rule):
    """Prefer ``iter_bits(mask)`` over ``range(n)`` + per-index bit probes.

    A ``for v in range(n)`` loop whose body is guarded by
    ``mask >> v & 1`` visits all ``n`` indices to find ``popcount(mask)``
    members; ``for v in iter_bits(mask)`` visits exactly the members in
    the same increasing order.  Warning severity: the pattern is
    legitimate when the loop really needs every index.
    """

    name = "per-bit-loop"
    severity = WARNING
    description = "range(n) loop probing mask >> v & 1; use iter_bits(mask)"
    scope = ("repro.core", "repro.partition", "repro.memo", "repro.enumerator")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.For)
                and isinstance(node.target, ast.Name)
                and _call_name(node.iter) == "range"
            ):
                continue
            first = node.body[0]
            if isinstance(first, ast.If) and _shift_test_uses(
                first.test, node.target.id
            ):
                yield module.finding(
                    self,
                    node,
                    "loop probes each index with mask >> v & 1; "
                    "iterate members directly with iter_bits(mask)",
                )
        # comprehensions with an `if mask >> v & 1` filter over range(n)
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                continue
            for generator in node.generators:
                if (
                    isinstance(generator.target, ast.Name)
                    and _call_name(generator.iter) == "range"
                    and any(
                        _shift_test_uses(cond, generator.target.id)
                        for cond in generator.ifs
                    )
                ):
                    yield module.finding(
                        self,
                        generator.iter,
                        "comprehension filters range(n) with mask >> v & 1; "
                        "iterate members directly with iter_bits(mask)",
                    )
