"""Import-layering rule: enforce the package DAG.

The architecture is a strict layering (lowest first)::

    core → {spaces, catalog} → {analysis, workloads, plans}
         → {obs, cost, cache, exec} → partition
         → {memo, bottomup, prefix, transform}
         → {enumerator, fastpath, anytime}
         → parallel → registry → {multiphase, serve} → experiments
         → conformance → {lint, cli}

A module may import only from packages at or below its own rank.  Upward
imports at module level are errors — they are the first step of every
import cycle and of layer inversions like core code reaching into the
CLI.  Upward imports *inside functions* (lazy imports) are warnings:
they defer the cycle instead of removing it, and deserve either a fix or
a pragma with a written justification.

``repro.cache`` sits *below* ``repro.memo``: the package holds the
eviction-policy and cold-tier machinery the memo composes, while the
cross-query cache surface (``GlobalPlanCache``) lives in ``repro.memo``
itself.  ``repro.registry`` (the name → factory catalog) sits below
``repro.parallel``: workers rebuild optimizers from spec strings through
the registry, while the registry's construction of a parallel enumerator
for ``@N`` suffixes is the one documented lazy inversion.  The facade
``repro/__init__`` re-exports from everywhere and is ranked at the top
alongside the CLI.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ERROR, WARNING, Finding, ModuleSource, Rule

__all__ = ["ImportLayeringRule", "LAYERS"]

#: Package → rank.  Imports must point at equal-or-lower ranks.
LAYERS: dict[str, int] = {
    "repro.core": 0,
    "repro.spaces": 1,
    "repro.catalog": 1,
    "repro.analysis": 2,
    "repro.workloads": 2,
    "repro.plans": 2,
    "repro.obs": 3,
    "repro.cost": 3,
    "repro.cache": 3,
    "repro.exec": 3,
    "repro.partition": 4,
    "repro.memo": 5,
    "repro.bottomup": 5,
    "repro.prefix": 5,
    "repro.transform": 5,
    "repro.enumerator": 6,
    "repro.fastpath": 6,  # peers with the oracle it subclasses
    "repro.anytime": 6,  # budgets/seeds/k-best the enumerator composes
    "repro.registry": 7,
    "repro.parallel": 8,
    "repro.multiphase": 9,
    "repro.serve": 9,
    "repro.experiments": 10,
    "repro.conformance": 11,
    "repro.lint": 12,
    "repro.cli": 12,
    "repro": 13,  # the facade __init__ re-exports from every layer
}


def _package_of(module_name: str) -> str:
    """Collapse a dotted module name to its layering package."""
    parts = module_name.split(".")
    if not parts or parts[0] != "repro":
        return ""
    if len(parts) == 1:
        return "repro"
    return ".".join(parts[:2])


class ImportLayeringRule(Rule):
    """Flag imports that point to a higher layer than the importer."""

    name = "import-layering"
    severity = ERROR
    description = "upward import violating the package layering DAG"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        source_pkg = _package_of(module.module)
        if not source_pkg:
            return
        source_rank = LAYERS.get(source_pkg)
        if source_rank is None:
            yield module.finding(
                self,
                1,
                f"package {source_pkg!r} is missing from the layering map; "
                "add it to repro.lint.rules.layering.LAYERS",
            )
            return
        lazy_depth = 0

        def visit(node: ast.AST) -> Iterator[Finding]:
            nonlocal lazy_depth
            in_function = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            if in_function:
                lazy_depth += 1
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    yield from self._check_import(
                        module, child, source_pkg, source_rank, lazy_depth > 0
                    )
                else:
                    yield from visit(child)
            if in_function:
                lazy_depth -= 1

        yield from visit(module.tree)

    def _check_import(
        self,
        module: ModuleSource,
        node: ast.Import | ast.ImportFrom,
        source_pkg: str,
        source_rank: int,
        lazy: bool,
    ) -> Iterator[Finding]:
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        else:
            if node.level:  # relative import: resolve within this package
                base = module.module.split(".")
                base = base[: len(base) - node.level]
                prefix = ".".join(base)
                targets = [f"{prefix}.{node.module}" if node.module else prefix]
            elif node.module:
                targets = [node.module]
        for target in targets:
            target_pkg = _package_of(target)
            if not target_pkg or target_pkg == source_pkg:
                continue
            if target_pkg == "repro" and source_pkg != "repro":
                # importing the facade from inside the package is always
                # a cycle; report it against the facade's top rank
                pass
            target_rank = LAYERS.get(target_pkg)
            if target_rank is None:
                yield module.finding(
                    self,
                    node,
                    f"imported package {target_pkg!r} is missing from the "
                    "layering map; add it to "
                    "repro.lint.rules.layering.LAYERS",
                )
                continue
            if target_rank <= source_rank:
                continue
            if lazy:
                finding = module.finding(
                    self,
                    node,
                    f"lazy upward import: {source_pkg} (layer "
                    f"{source_rank}) imports {target_pkg} (layer "
                    f"{target_rank}) inside a function; this defers a "
                    "cycle rather than removing it",
                )
                yield Finding(
                    rule=finding.rule,
                    severity=WARNING,
                    path=finding.path,
                    module=finding.module,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                )
            else:
                yield module.finding(
                    self,
                    node,
                    f"upward import: {source_pkg} (layer {source_rank}) "
                    f"imports {target_pkg} (layer {target_rank}); the "
                    "layering DAG is core → partition → enumerator → "
                    "{parallel, conformance} → cli",
                )
