"""Metrics discipline: counters and instruments must be declared.

:class:`repro.analysis.metrics.Metrics` derives its snapshot/merge/
to_dict field lists from the dataclass fields, so a counter bumped under a
misspelled name silently creates a fresh attribute that no snapshot, span
delta, or worker merge ever sees.  Likewise a registry instrument created
from an ad-hoc string literal dodges the shared-name constants that the
exporters and merge logic key on.  Both rules introspect the live
``repro`` modules, so the declared universe is always current.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ERROR, Finding, ModuleSource, Rule

__all__ = ["InstrumentNameRule", "MetricsFieldRule"]


def _metrics_counter_fields() -> frozenset[str]:
    """Declared Metrics field names, by introspection (never hard-coded)."""
    from dataclasses import fields

    from repro.analysis.metrics import Metrics

    return frozenset(f.name for f in fields(Metrics))


def _declared_instrument_names() -> frozenset[str]:
    """Instrument-name constant values exported by ``repro.obs.registry``."""
    from repro.obs import registry

    return frozenset(
        value
        for name, value in vars(registry).items()
        if name.isupper() and isinstance(value, str)
    )


def _is_metrics_receiver(node: ast.expr) -> bool:
    """True for ``metrics`` / ``self.metrics`` / ``<expr>.metrics``."""
    if isinstance(node, ast.Name):
        return node.id == "metrics"
    if isinstance(node, ast.Attribute):
        return node.attr == "metrics"
    return False


class MetricsFieldRule(Rule):
    """Every ``metrics.<field>`` write must name a declared Metrics field.

    Catches the typo class of bug where ``metrics.memo_evictons += 1``
    creates a ghost attribute invisible to ``snapshot``/``merge``/
    ``to_dict`` — the counter "works" locally but vanishes from span
    deltas, parallel merges, and the JSON exporters.
    """

    name = "metrics-field"
    severity = ERROR
    description = "write to an undeclared Metrics counter field"

    _ALLOWED_NON_FIELDS = frozenset({"metrics"})  # `self.metrics = ...` itself

    def __init__(self) -> None:
        self._fields: frozenset[str] | None = None

    @property
    def fields(self) -> frozenset[str]:
        if self._fields is None:
            self._fields = _metrics_counter_fields()
        return self._fields

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = node.targets
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and _is_metrics_receiver(target.value)
                ):
                    continue
                attr = target.attr
                if attr in self.fields or attr in self._ALLOWED_NON_FIELDS:
                    continue
                yield module.finding(
                    self,
                    target,
                    f"Metrics has no field {attr!r}; writes outside the "
                    "declared dataclass fields are invisible to "
                    "snapshot/merge/to_dict (see repro.analysis.metrics)",
                )


class InstrumentNameRule(Rule):
    """Registry instruments must use the shared name constants.

    ``registry.counter("memo_evictions")`` with an inline literal works
    until the constant in ``repro.obs.registry`` is renamed — then the
    writer and the exporter silently split into two instruments.  Every
    ``counter``/``histogram``/``timer`` call must pass a name constant
    (or a variable); inline literals must at least match a declared name.
    """

    name = "instrument-name"
    severity = ERROR
    description = (
        "registry instrument created from an undeclared string literal"
    )

    _FACTORIES = frozenset({"counter", "histogram", "timer"})

    def __init__(self) -> None:
        self._names: frozenset[str] | None = None

    @property
    def declared(self) -> frozenset[str]:
        if self._names is None:
            self._names = _declared_instrument_names()
        return self._names

    def applies_to(self, module: ModuleSource) -> bool:
        # The registry module itself constructs instruments generically.
        return module.module != "repro.obs.registry"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._FACTORIES
                and node.args
            ):
                continue
            first = node.args[0]
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                and first.value not in self.declared
            ):
                yield module.finding(
                    self,
                    first,
                    f"instrument name {first.value!r} is not a declared "
                    "constant in repro.obs.registry; add the constant and "
                    "reference it from both writer and reader",
                )
