"""Fast-path dependency guard: optional accelerators stay optional.

The fast path (``repro.fastpath``) accelerates with numpy when it is
importable and with a mypyc-compiled core when the ``[compiled]`` extra
was built — but the repro must keep producing byte-identical results on
a bare python install (the acceptance gates run without either).  That
only holds if *every* probe for an optional accelerator goes through the
single detection shim ``repro.fastpath.detect``: one bare
``import numpy`` at module level anywhere else turns a soft capability
into a hard dependency and breaks numpy-free environments at import
time, silently, for every entry point that transitively loads the
module.

This rule flags any ``import``/``from ... import`` of an optional
accelerator package (``numpy``, ``mypyc``) outside the detection shim —
lazy function-scoped imports included, because a deferred hard
dependency still detonates on first call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ERROR, Finding, ModuleSource, Rule

__all__ = ["FastpathGuardRule"]

#: Optional-accelerator top-level packages that only the shim may touch.
_GUARDED_PACKAGES = frozenset({"numpy", "mypyc"})

#: The one module allowed to import accelerators directly: the cached
#: capability probe every other consumer asks.
_DETECTION_SHIM = "repro.fastpath.detect"


class FastpathGuardRule(Rule):
    """Optional accelerators may only be imported by the detection shim.

    Flags ``import numpy``/``from numpy import ...`` (and ``mypyc``)
    in any module except ``repro.fastpath.detect``; consumers must call
    :func:`repro.fastpath.detect.numpy_or_none` so availability is
    probed once, cached, and overridable in tests.
    """

    name = "fastpath-guard"
    severity = ERROR
    description = (
        "optional accelerator imported outside the repro.fastpath.detect "
        "shim, turning a soft capability into a hard dependency"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.module == _DETECTION_SHIM:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports cannot leave repro
                names = [node.module]
            else:
                continue
            for name in names:
                top = name.split(".", 1)[0]
                if top in _GUARDED_PACKAGES:
                    yield module.finding(
                        self,
                        node,
                        f"direct import of optional accelerator {top!r}; "
                        "go through repro.fastpath.detect (e.g. "
                        "numpy_or_none()) so availability stays a probed "
                        "capability, not a hard dependency",
                    )
