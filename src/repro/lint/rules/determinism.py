"""Determinism rules: seeded randomness and order-stable iteration.

The parallel runtime requires workers to rebuild bit-identical queries
from seeds, and CI regression baselines pin exact counter values — both
break the moment an unseeded generator or an ordering-sensitive iteration
over a hash-ordered container slips into the reproducible paths.  These
rules are the static counterpart of the dynamic guarantees in
``repro.workloads.seeding`` and ``repro.parallel.merge``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ERROR, Finding, ModuleSource, Rule

__all__ = ["IdentityOrderingRule", "SetIterationOrderRule", "UnseededRandomRule"]

#: Module-level ``random`` functions that draw from the hidden global RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)


class UnseededRandomRule(Rule):
    """No unseeded randomness outside ``repro.workloads.seeding``.

    Flags ``random.Random()`` constructed without a seed and every call to
    the module-level ``random.*`` functions (which share one hidden,
    unseeded global generator).  All stochastic code must thread a
    ``random.Random`` resolved through
    :func:`repro.workloads.seeding.coerce_rng`.
    """

    name = "unseeded-random"
    severity = ERROR
    description = (
        "unseeded random.Random() or global random.* call outside "
        "repro.workloads.seeding"
    )

    _EXEMPT = ("repro.workloads.seeding",)

    def applies_to(self, module: ModuleSource) -> bool:
        return module.module not in self._EXEMPT

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                ):
                    if func.attr == "Random" and not node.args and not node.keywords:
                        yield module.finding(
                            self,
                            node,
                            "random.Random() without a seed draws a fresh "
                            "sequence per process; pass a seed or use "
                            "repro.workloads.seeding.coerce_rng",
                        )
                    elif func.attr in _GLOBAL_RANDOM_FNS:
                        yield module.finding(
                            self,
                            node,
                            f"random.{func.attr}() uses the hidden global "
                            "generator; thread a seeded random.Random "
                            "instead (see repro.workloads.seeding)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name in _GLOBAL_RANDOM_FNS
                )
                if bad:
                    yield module.finding(
                        self,
                        node,
                        f"importing global-generator functions {bad} from "
                        "random; import the module and thread a seeded "
                        "random.Random instead",
                    )


def _is_set_expression(node: ast.expr) -> bool:
    """True for expressions that are unambiguously hash-ordered sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # set algebra on set expressions (a | {x}, set(a) - set(b), ...)
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class SetIterationOrderRule(Rule):
    """No set iteration feeding ordering-sensitive sinks.

    Within the deterministic-merge subsystems (``parallel``, ``cache``,
    ``memo``, ``conformance``), iterating a ``set``/``frozenset`` into
    anything that preserves order — a ``for`` loop, ``list()``,
    ``enumerate()``, a list comprehension, ``str.join`` — makes results
    depend on hash seeding.  Wrap the set in ``sorted(...)`` or keep a
    deterministically ordered container instead.  Building another *set*
    from set iteration is order-free and allowed.
    """

    name = "set-iteration-order"
    severity = ERROR
    description = (
        "set/frozenset iterated into an ordering-sensitive sink in an "
        "order-critical package"
    )
    scope = ("repro.parallel", "repro.cache", "repro.memo", "repro.conformance")

    _ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "iter"})

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_set_expression(node.iter):
                yield module.finding(
                    self,
                    node.iter,
                    "for-loop over a set: iteration order depends on hash "
                    "seeding; wrap in sorted(...)",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        yield module.finding(
                            self,
                            generator.iter,
                            "comprehension over a set builds an ordered "
                            "result from hash order; wrap in sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in self._ORDER_SINKS
                    and node.args
                    and _is_set_expression(node.args[0])
                ):
                    yield module.finding(
                        self,
                        node,
                        f"{func.id}() over a set materializes hash order; "
                        "wrap in sorted(...)",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and _is_set_expression(node.args[0])
                ):
                    yield module.finding(
                        self,
                        node,
                        "str.join over a set concatenates in hash order; "
                        "wrap in sorted(...)",
                    )


class IdentityOrderingRule(Rule):
    """No ``id()`` / ``hash()`` inside ordering keys.

    ``sorted(xs, key=lambda x: id(x))`` (or ``hash``) orders by allocation
    address or hash seed — different in every process, so any downstream
    consumer of the order diverges between the driver and its workers.
    """

    name = "identity-ordering"
    severity = ERROR
    description = "id()/hash() used inside a sort key"

    _SORTERS = frozenset({"sorted", "min", "max"})

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sorter = (
                isinstance(func, ast.Name) and func.id in self._SORTERS
            ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
            if not is_sorter:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                for sub in ast.walk(keyword.value):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in {"id", "hash"}
                    ):
                        yield module.finding(
                            self,
                            sub,
                            f"{sub.func.id}() in a sort key orders by "
                            "process-specific identity; key on stable "
                            "content instead",
                        )
