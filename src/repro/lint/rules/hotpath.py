"""Hot-path purity: no payload construction outside tracer guards.

``docs/observability.md`` promises the untraced search pays one attribute
test per recursion step (``tracer.enabled`` / ``self._tracing``) and
nothing else.  One f-string or tracer-event payload built outside such a
guard charges every production run for observability it did not ask for —
exactly the incidental cost DPconv shows enumeration hot paths cannot
absorb.  This rule statically enforces the guard discipline in
``repro.enumerator``, ``repro.partition``, ``repro.fastpath``, and
``repro.anytime``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ERROR, Finding, ModuleSource, Rule

__all__ = ["HotPathPurityRule"]

#: Tracer span/annotation methods whose calls (and argument construction)
#: must sit behind a tracer-active guard.  ``bind_metrics`` is setup.
_TRACER_METHODS = frozenset(
    {"begin", "end", "event", "memo_hit", "memo_bound_hit", "predicted_prune"}
)

#: Kernel-profiler methods held to the same discipline: a ``profiler``
#: receiver may only be frame-bracketed/counted behind a profiler-active
#: guard (``profiler.enabled`` / ``self._profiling``).
_PROFILER_METHODS = frozenset({"enter", "exit", "count"})

#: Functions that are off the search hot path by construction.
#: ``token`` renders a registry suffix — setup, like ``describe``.
_COLD_FUNCTIONS = frozenset(
    {"__init__", "__repr__", "__str__", "describe", "summary", "to_dict", "token"}
)


def _is_guard_test(test: ast.expr) -> bool:
    """True for conditions that gate on tracing being active."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr in {
            "enabled",
            "_tracing",
            "_profiling",
        }:
            return True
        if isinstance(node, ast.Name) and node.id in {
            "tracing",
            "measure",
            "profiling",
        }:
            return True
    return False


class HotPathPurityRule(Rule):
    """Instrumentation payloads must be tracer-guarded in hot modules.

    Flags, outside an ``if <tracing>:``/``if <profiling>:`` guard and
    outside ``raise``/``assert`` error paths: f-strings,
    ``str.format``/``%``-formatting, ``print``/``logging`` calls, tracer
    span/event method calls, and kernel-profiler frame/count calls.
    Cold-by-construction functions (``__init__``, ``__repr__``,
    ``describe``, ...) and functions prefixed ``render`` are exempt.
    """

    name = "hotpath-purity"
    severity = ERROR
    description = (
        "string/log/tracer/profiler payload built outside an "
        "instrumentation-active guard on the enumeration hot path"
    )
    scope = (
        "repro.enumerator",
        "repro.partition",
        "repro.fastpath",
        "repro.anytime",  # seeds/k-best run inside the budgeted search
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        findings: list[Finding] = []
        for node in module.tree.body:
            self._walk(module, node, guarded=False, in_cold=True, out=findings)
        yield from findings

    # Recursive descent tracking guard state; module level is "cold"
    # (imports, class bodies, constants) — only function bodies are hot.
    def _walk(
        self,
        module: ModuleSource,
        node: ast.AST,
        *,
        guarded: bool,
        in_cold: bool,
        out: list[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cold = (
                node.name in _COLD_FUNCTIONS
                or node.name.startswith("render")
            )
            for child in node.body:
                self._walk(module, child, guarded=False, in_cold=cold, out=out)
            return
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._walk(module, child, guarded=guarded, in_cold=True, out=out)
            return
        if isinstance(node, (ast.Raise, ast.Assert)):
            return  # error paths may format freely
        if isinstance(node, ast.If):
            branch_guarded = guarded or _is_guard_test(node.test)
            for child in node.body:
                self._walk(
                    module, child, guarded=branch_guarded, in_cold=in_cold, out=out
                )
            for child in node.orelse:
                self._walk(module, child, guarded=guarded, in_cold=in_cold, out=out)
            return
        if not in_cold and not guarded:
            self._flag_impure(module, node, out)
        for child in ast.iter_child_nodes(node):
            self._walk(module, child, guarded=guarded, in_cold=in_cold, out=out)

    def _flag_impure(
        self, module: ModuleSource, node: ast.AST, out: list[Finding]
    ) -> None:
        if isinstance(node, ast.JoinedStr):
            out.append(
                module.finding(
                    self,
                    node,
                    "f-string built on the hot path outside a tracer guard",
                )
            )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if isinstance(node.left, ast.Constant) and isinstance(
                node.left.value, str
            ):
                out.append(
                    module.finding(
                        self,
                        node,
                        "%-formatting on the hot path outside a tracer guard",
                    )
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                out.append(
                    module.finding(
                        self, node, "print() on the enumeration hot path"
                    )
                )
            elif isinstance(func, ast.Attribute):
                if func.attr == "format" and isinstance(
                    func.value, ast.Constant
                ):
                    out.append(
                        module.finding(
                            self,
                            node,
                            "str.format on the hot path outside a "
                            "tracer guard",
                        )
                    )
                elif (
                    isinstance(func.value, ast.Name)
                    and func.value.id in {"logging", "logger", "log"}
                ):
                    out.append(
                        module.finding(
                            self,
                            node,
                            "logging call on the enumeration hot path",
                        )
                    )
                elif func.attr in _TRACER_METHODS and self._receiver_is_tracer(
                    func.value
                ):
                    out.append(
                        module.finding(
                            self,
                            node,
                            f"tracer.{func.attr}() outside an "
                            "`if tracer.enabled:`/`if self._tracing:` "
                            "guard; payload construction must be free "
                            "when tracing is off",
                        )
                    )
                elif (
                    func.attr in _PROFILER_METHODS
                    and self._receiver_is_profiler(func.value)
                ):
                    out.append(
                        module.finding(
                            self,
                            node,
                            f"profiler.{func.attr}() outside an "
                            "`if profiler.enabled:`/`if self._profiling:` "
                            "guard; kernel frames must be free when "
                            "profiling is off",
                        )
                    )

    @staticmethod
    def _receiver_is_tracer(receiver: ast.expr) -> bool:
        for node in ast.walk(receiver):
            if isinstance(node, ast.Attribute) and "tracer" in node.attr:
                return True
            if isinstance(node, ast.Name) and "tracer" in node.id:
                return True
        return False

    @staticmethod
    def _receiver_is_profiler(receiver: ast.expr) -> bool:
        for node in ast.walk(receiver):
            if isinstance(node, ast.Attribute) and "profiler" in node.attr:
                return True
            if isinstance(node, ast.Name) and "profiler" in node.id:
                return True
        return False
