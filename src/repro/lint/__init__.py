"""``repro.lint`` — repo-aware static analysis for the reproduction.

The conformance subsystem (PR 4) verifies the paper's invariants
*dynamically*; this package enforces the implementation disciplines those
invariants rest on *statically*, at review time:

* **determinism** — seeded randomness only, no set iteration feeding
  ordering-sensitive sinks, no identity-based sort keys;
* **bitset discipline** — the Section 3.1 bitmap model stays bitwise in
  ``core``/``partition`` (no set materialization, no string popcounts,
  no per-index bit probing where ``iter_bits`` exists);
* **hot-path purity** — instrumentation payloads stay behind tracer
  guards in ``enumerator``/``partition``;
* **metrics discipline** — counter fields and instrument names must be
  declared (cross-checked by introspecting the live modules);
* **import layering** — the package DAG ``core → partition → enumerator
  → {parallel, conformance} → cli`` admits no upward imports.

Entry points: ``repro lint`` on the CLI, :func:`lint_paths` /
:func:`lint_source` from code and tests.  See ``docs/static-analysis.md``
for the rule catalog and the pragma syntax.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lint.engine import (
    ERROR,
    WARNING,
    Finding,
    LintReport,
    ModuleSource,
    Rule,
    lint_modules,
    module_name_for,
)
from repro.lint.engine import lint_paths as _lint_paths
from repro.lint.engine import lint_source as _lint_source
from repro.lint.flow import FlowProgram, render_call_graph
from repro.lint.reporters import (
    render_json,
    render_rules,
    render_sarif,
    render_text,
)
from repro.lint.rules import (
    ALL_RULES,
    FLOW_RULES,
    LAYERS,
    SYNTACTIC_RULES,
    rule_by_name,
)

__all__ = [
    "ALL_RULES",
    "ERROR",
    "FLOW_RULES",
    "LAYERS",
    "SYNTACTIC_RULES",
    "WARNING",
    "Finding",
    "FlowProgram",
    "LintReport",
    "ModuleSource",
    "Rule",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "render_call_graph",
    "render_json",
    "render_rules",
    "render_sarif",
    "render_text",
    "rule_by_name",
]


def lint_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
    program_paths: Sequence[str] | None = None,
) -> LintReport:
    """Lint files/directories with the built-in rules (or ``rules``)."""
    return _lint_paths(
        paths, rules if rules is not None else ALL_RULES,
        select=select, ignore=ignore, program_paths=program_paths,
    )


def lint_source(
    source: str,
    *,
    module: str = "fixture",
    path: str = "<string>",
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint one snippet with the built-in rules (test entry point)."""
    return _lint_source(
        source, rules if rules is not None else ALL_RULES,
        module=module, path=path, select=select, ignore=ignore,
    )
