"""Batched cost kernel: one evaluation over a whole candidate frontier.

``repro profile`` bills ~50 % of wall time to ``cost.eval``: the scalar
model is called three times (once per join method) for every candidate
pair the partition strategy emits.  :class:`BatchCostKernel` replaces
those per-candidate calls with one evaluation over the full frontier of
an expression, specialised by exact cost-model type:

* :class:`~repro.cost.io_model.CostModel` (the textbook I/O model) —
  the bnl/hash formulas are evaluated as numpy float64 array expressions
  in the *same operation order* as the scalar code (add, multiply,
  divide, and ceil are exact IEEE-754 operations, so same inputs + same
  order = bit-identical outputs); sort-merge costs are gathered from
  per-subset scalars memoized in :class:`~repro.fastpath.stats.OperandStats`
  (``external_sort_cost`` contains a logarithm, which is *not* exact, so
  it is never re-derived vectorised).
* :class:`~repro.cost.cout_model.CoutCostModel` — an operator's cost is
  its output cardinality, so the batch is a pure gather of memoized
  cardinalities (numpy adds nothing to a gather; both backends share it).
* any other subclass — per-candidate scalar fallback through the
  model's own ``operator_cost``/``lower_bound`` hooks, so exotic models
  keep working under ``!fast`` unchanged.

Predicted-bound batches use the scalar formulas over memoized stats for
every mode: they are single additions, where gather cost dominates and
exactness is free.

The ``python`` backend performs the identical batch restructuring
without numpy — it is the default-available fallback the acceptance
gate measures, and the only backend in numpy-free environments.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.catalog.query import Query
from repro.cost.cout_model import CoutCostModel
from repro.cost.io_model import CostModel
from repro.fastpath.detect import default_backend, numpy_or_none
from repro.fastpath.stats import OperandStats

__all__ = ["BatchCostKernel"]

#: The operator layout the I/O specialisation is hard-wired for.
_IO_METHOD_OPS = ("bnl", "hash", "smj")


class BatchCostKernel:
    """Vectorised operator costs and lower bounds over candidate pairs.

    ``operator_costs(pairs)`` returns, per candidate ``(left, right)``,
    one tuple of operator costs aligned with ``model.JOIN_METHODS`` —
    each bit-identical to ``model.operator_cost(query, method, left,
    right)``.  ``lower_bounds(pairs)`` mirrors ``model.lower_bound``.
    """

    __slots__ = ("query", "model", "stats", "mode", "backend", "_np")

    def __init__(
        self,
        query: Query,
        model: CostModel,
        backend: str | None = None,
    ) -> None:
        self.query = query
        self.model = model
        self.stats = OperandStats(query, model)
        kind = type(model)
        if kind is CoutCostModel:
            self.mode = "cout"
        elif kind is CostModel and tuple(
            method.op for method in model.JOIN_METHODS
        ) == _IO_METHOD_OPS:
            self.mode = "io"
        else:
            self.mode = "generic"
        if backend is None:
            backend = default_backend()
        if backend not in {"python", "numpy"}:
            raise ValueError(
                f"unknown fastpath backend {backend!r}; use python or numpy"
            )
        if backend == "numpy" and numpy_or_none() is None:
            raise ValueError(
                "numpy backend requested but numpy is not importable"
            )
        # Only the I/O formulas vectorise; a gather or a generic scalar
        # fallback gains nothing from array round-trips.
        self.backend = backend if self.mode == "io" else "python"
        self._np: Any = numpy_or_none() if self.backend == "numpy" else None

    # -- operator costs ----------------------------------------------------------

    def operator_costs(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[tuple[float, ...]]:
        """Per-candidate operator costs, aligned with ``JOIN_METHODS``."""
        if self.mode == "cout":
            cardinality = self.stats.cardinality
            return [
                (cost, cost, cost)
                for cost in [cardinality(left | right) for left, right in pairs]
            ]
        if self.mode == "io":
            if self._np is not None:
                return self._io_costs_numpy(pairs)
            return self._io_costs_python(pairs)
        model = self.model
        query = self.query
        methods = model.JOIN_METHODS
        return [
            tuple(
                model.operator_cost(query, method, left, right)
                for method in methods
            )
            for left, right in pairs
        ]

    def _io_costs_python(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[tuple[float, ...]]:
        pages = self.stats.pages
        sort_cost = self.stats.sort_cost
        loads_divisor = self.model.buffer_pages - 2
        out: list[tuple[float, ...]] = []
        for left, right in pairs:
            left_pages = pages(left)
            right_pages = pages(right)
            bnl = left_pages + math.ceil(left_pages / loads_divisor) * right_pages
            hash_cost = 3.0 * (left_pages + right_pages)
            smj = sort_cost(left) + sort_cost(right) + left_pages + right_pages
            out.append((bnl, hash_cost, smj))
        return out

    def _io_costs_numpy(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[tuple[float, ...]]:
        np = self._np
        pages = self.stats.pages
        sort_cost = self.stats.sort_cost
        left_pages = np.array([pages(left) for left, _right in pairs])
        right_pages = np.array([pages(right) for _left, right in pairs])
        left_sorts = np.array([sort_cost(left) for left, _right in pairs])
        right_sorts = np.array([sort_cost(right) for _left, right in pairs])
        # Same formulas, same operation order as the scalar model: ceil,
        # +, *, / are exact IEEE-754 operations, so these arrays are
        # bit-identical to per-candidate `join_operator_cost` results.
        bnl = left_pages + np.ceil(
            left_pages / (self.model.buffer_pages - 2)
        ) * right_pages
        hash_cost = 3.0 * (left_pages + right_pages)
        smj = left_sorts + right_sorts + left_pages + right_pages
        return list(zip(bnl.tolist(), hash_cost.tolist(), smj.tolist()))

    # -- predicted-cost lower bounds ---------------------------------------------

    def lower_bounds(self, pairs: Sequence[tuple[int, int]]) -> list[float]:
        """Per-candidate Section 4.2 lower bounds (scalar-exact)."""
        if self.mode == "cout":
            cardinality = self.stats.cardinality
            out: list[float] = []
            for left, right in pairs:
                bound = cardinality(left | right)
                if left & (left - 1):
                    bound += cardinality(left)
                if right & (right - 1):
                    bound += cardinality(right)
                out.append(bound)
            return out
        if self.mode == "io":
            pages = self.stats.pages
            out = []
            for left, right in pairs:
                bound = 0.0
                if left & (left - 1):
                    bound += pages(left)
                if right & (right - 1):
                    bound += pages(right)
                out.append(bound)
            return out
        model = self.model
        query = self.query
        return [
            model.lower_bound(query, left, right) for left, right in pairs
        ]
