"""The fast-path enumerator: batched costing inside Algorithm 1/7.

:class:`FastTopDownEnumerator` is a drop-in subclass of the oracle
:class:`~repro.enumerator.TopDownEnumerator` that replaces the two
measured hot loops (``_calc_best_join`` and its Algorithm 7 budgeted
variant — ``cost.eval`` ~50 % and ``enum.recurse`` ~31 % of wall per
BENCH_profile.json) with a frontier-batched equivalent:

1. materialise the partition frontier of the expression once;
2. evaluate every candidate's operator costs (and, under predicted
   bounding, lower bounds) in one :class:`~repro.fastpath.batch.BatchCostKernel`
   call over memoized operand stats;
3. scan the candidates in the oracle's order with the oracle's exact
   comparison semantics (strict ``<``, first wins ties), building a
   :class:`~repro.plans.physical.Plan` node **only when a candidate
   improves on the incumbent** — the oracle builds one per
   (candidate, method), which is most of the recursion glue it pays for.

Conformance contract: because the batch kernel is bit-identical to the
scalar model and the scan preserves iteration order and tie-breaking,
the fast path returns plans that compare equal (``Plan.__eq__``, i.e.
shape, operators, and exact costs) to the oracle's — enforced per fuzz
case by the ``fastpath-parity`` invariant of :mod:`repro.conformance`.

Metrics are conserved exactly (``logical_joins_enumerated``,
``join_operators_costed``, ``predicted_prunes``, the partition and
time-between-joins histograms), so the Table 2 closed-form gates hold
unchanged under ``!fast``.

Interesting orders (``order is not None``) and kernel profiling keep the
oracle code paths: ordered requests hit method-filtered loops the batch
layout does not model, and a profiler attributing ``cost.eval`` frames
must see the scalar calls it documents.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.catalog.query import Query
from repro.cost.io_model import CostModel
from repro.enumerator import BUDGET_HEADROOM, Bounding, TopDownEnumerator
from repro.partition.base import PartitionStrategy
from repro.plans.physical import Plan, plan_cost
from repro.fastpath.batch import BatchCostKernel

__all__ = ["FastTopDownEnumerator"]


class FastTopDownEnumerator(TopDownEnumerator):
    """Top-down partition search with frontier-batched costing.

    Accepts every :class:`TopDownEnumerator` parameter plus ``backend``
    (``"python"`` | ``"numpy"`` | ``None`` for auto-detection).  Refuses
    a kernel profiler: profiled runs must use the oracle so ``cost.eval``
    attribution reflects the scalar calls being profiled.
    """

    def __init__(
        self,
        query: Query,
        partition: PartitionStrategy,
        cost_model: CostModel | None = None,
        *,
        backend: str | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(query, partition, cost_model, **kwargs)
        if self._profiling:
            raise ValueError(
                "the fast path batches cost evaluation and cannot honour "
                "per-call kernel attribution; profile the oracle path "
                "(REPRO_FASTPATH=off / no !fast suffix) instead"
            )
        self._batch = BatchCostKernel(query, self.cost_model, backend=backend)

    @property
    def fastpath_backend(self) -> str:
        """The batch backend in use (``python`` or ``numpy``)."""
        return self._batch.backend

    def _topk_operator_cost_rows(
        self, pairs: Sequence[tuple[int, int]]
    ) -> Sequence[Sequence[float]]:
        # One batched kernel call replaces the oracle's per-(pair, method)
        # scalar costing; the kernel is bit-identical to the scalar model,
        # so ranked cells agree exactly (the `topk-soundness` invariant).
        return self._batch.operator_costs(pairs)

    # -- Algorithm 1, batched ----------------------------------------------------

    def _calc_best_join(
        self, subset: int, order: int | None, seed: Plan | None
    ) -> Plan | None:
        if order is not None:
            # Ordered requests filter methods by produced order; rare by
            # construction (the paper's experiments run unordered) and
            # not modelled by the batch layout — delegate to the oracle.
            return super()._calc_best_join(subset, order, seed)
        query = self.query
        metrics = self.metrics
        metrics.note_expansion((subset, None))
        # Root-incumbent watch for anytime mode, as in the oracle loops.
        watching = subset == self._root_watch and self._root_order is None
        tracing = self._tracing
        h_join_gap = self._h_join_gap
        get_best = self._get_best
        predicted = Bounding.PREDICTED in self.bounding

        batch = self._batch
        pairs = list(self.partition.partitions(query.graph, subset, metrics))
        operator_costs = batch.operator_costs(pairs)
        bounds = batch.lower_bounds(pairs) if predicted else None

        cost_model = self.cost_model
        methods = cost_model.JOIN_METHODS
        method_count = len(methods)
        build_join = cost_model.build_join
        best = seed
        best_cost = plan_cost(seed)
        joins_costed = 0
        for index, (left, right) in enumerate(pairs):
            metrics.logical_joins_enumerated += 1
            if predicted and bounds is not None and bounds[index] >= best_cost:
                metrics.predicted_prunes += 1
                if tracing:
                    self.tracer.predicted_prune(left, right, bounds[index])
                continue
            left_plan = get_best(left, None)
            right_plan = get_best(right, None)
            if left_plan is None or right_plan is None:
                continue
            child_cost = left_plan.cost + right_plan.cost
            joins_costed += method_count
            if h_join_gap is not None:
                for _ in range(method_count):
                    self._note_join_costed()
            candidate = operator_costs[index]
            for method_index in range(method_count):
                # Same strict-< and same addition order as the oracle's
                # `plan.cost < plan_cost(best)`: the Plan node is only
                # assembled for genuine improvements.
                if child_cost + candidate[method_index] < best_cost:
                    best = build_join(
                        query, methods[method_index], left_plan, right_plan
                    )
                    best_cost = best.cost
                    if watching:
                        self._anytime_best = best
        metrics.join_operators_costed += joins_costed
        if self._h_partitions is not None:
            self._h_partitions.observe(len(pairs))
        return best

    # -- Algorithm 7, batched ----------------------------------------------------

    def _calc_best_join_budgeted(
        self, subset: int, order: int | None, budget: float, seed: Plan | None
    ) -> Plan | None:
        if order is not None:
            return super()._calc_best_join_budgeted(subset, order, budget, seed)
        query = self.query
        metrics = self.metrics
        metrics.note_expansion((subset, None))
        # Root-incumbent watch for anytime mode, as in the oracle loops.
        watching = subset == self._root_watch and self._root_order is None
        tracing = self._tracing
        h_join_gap = self._h_join_gap
        get_best_budgeted = self._get_best_budgeted
        predicted = Bounding.PREDICTED in self.bounding

        batch = self._batch
        pairs = list(self.partition.partitions(query.graph, subset, metrics))
        operator_costs = batch.operator_costs(pairs)
        bounds = batch.lower_bounds(pairs) if predicted else None

        cost_model = self.cost_model
        methods = cost_model.JOIN_METHODS
        build_join = cost_model.build_join
        best: Plan | None = None
        if seed is not None and seed.cost <= budget:
            best = seed
        best_cost = plan_cost(best)
        for index, (left, right) in enumerate(pairs):
            metrics.logical_joins_enumerated += 1
            cap = min(budget, best_cost)
            if predicted and bounds is not None and bounds[index] > cap:
                metrics.predicted_prunes += 1
                if tracing:
                    self.tracer.predicted_prune(left, right, bounds[index])
                continue
            candidate = operator_costs[index]
            # BUDGET_HEADROOM: see the oracle's `_calc_best_join_budgeted` —
            # exploration slack against subtraction rounding; the accept
            # test below stays exact.
            remaining = cap * BUDGET_HEADROOM - min(candidate)
            if remaining < 0:
                continue
            left_plan = get_best_budgeted(left, None, remaining)
            if left_plan is None:
                continue
            remaining -= left_plan.cost
            right_plan = get_best_budgeted(right, None, remaining)
            if right_plan is None:
                continue
            child_cost = left_plan.cost + right_plan.cost
            for method_index, operator_cost in enumerate(candidate):
                total = child_cost + operator_cost
                metrics.join_operators_costed += 1
                if h_join_gap is not None:
                    self._note_join_costed()
                if total <= min(budget, best_cost) and total < best_cost:
                    best = build_join(
                        query, methods[method_index], left_plan, right_plan
                    )
                    best_cost = best.cost
                    if watching:
                        self._anytime_best = best
        if self._h_partitions is not None:
            self._h_partitions.observe(len(pairs))
        return best
