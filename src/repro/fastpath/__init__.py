"""``repro.fastpath``: the conformance-checked accelerated substrate.

Two measured hot kernels (``cost.eval`` ~50 % and ``enum.recurse`` ~31 %
of wall, BENCH_profile.json) run here behind a drop-in fast path:

* :class:`BatchCostKernel` — vectorised operator costs over a whole
  candidate frontier (numpy when importable, a pure-python batch
  otherwise), fed by :class:`OperandStats` per-subset memos;
* :class:`FastTopDownEnumerator` — the oracle's Algorithm 1/7 loops
  restructured around the batch kernel, building plan nodes only for
  improving candidates.

Selection: the registry's ``!fast`` name suffix (``TBNmc!fast``,
composing with ``@N`` and ``%policy``), ``--fastpath on|off|auto`` on
the CLI and ``repro serve``, or ``REPRO_FASTPATH=on``;
``REPRO_FASTPATH=off`` is the global escape hatch.  The pure-python
oracle stays the default and the conformance reference: ``repro verify``
pins bit-identical plans and 1e-9 cost agreement between the paths on
every fuzz case (the ``fastpath-parity`` invariant).

See ``docs/performance.md`` for the architecture, the oracle contract,
and the optional mypyc-compiled core (``pip install -e .[compiled]``).
"""

from __future__ import annotations

from repro.fastpath.batch import BatchCostKernel
from repro.fastpath.detect import (
    FASTPATH_ENV,
    available_backends,
    compiled_core_active,
    default_backend,
    fastpath_mode,
    is_compiled,
    numpy_or_none,
    resolve_fastpath,
)
from repro.fastpath.enumerator import FastTopDownEnumerator
from repro.fastpath.stats import OperandStats

__all__ = [
    "FASTPATH_ENV",
    "BatchCostKernel",
    "FastTopDownEnumerator",
    "OperandStats",
    "available_backends",
    "compiled_core_active",
    "default_backend",
    "fastpath_mode",
    "is_compiled",
    "numpy_or_none",
    "resolve_fastpath",
]
