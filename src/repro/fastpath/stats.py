"""Per-query memoized operand statistics for the batch cost kernel.

The scalar cost model recomputes ``query.pages(subset)`` (a cardinality
scale plus a division) and — for sort-merge joins — a full
``external_sort_cost`` every time a candidate touches a subset, although
within one enumeration the same subsets recur across thousands of
candidate pairs.  :class:`OperandStats` memoizes those per-subset scalars
once per query, so recosting a join is three dictionary lookups.

Exactness contract: every value returned is produced by the *scalar*
functions of the oracle cost model (``Query.pages``,
``external_sort_cost``) and cached verbatim — never recomputed through a
different formula — so batch costs assembled from these stats are
bit-identical to the per-candidate oracle costs.
"""

from __future__ import annotations

from repro.catalog.query import Query
from repro.cost.io_model import CostModel, external_sort_cost

__all__ = ["OperandStats"]


class OperandStats:
    """Memoized per-subset scalars (pages, sort cost, cardinality)."""

    __slots__ = ("query", "model", "_pages", "_sort_costs")

    def __init__(self, query: Query, model: CostModel) -> None:
        self.query = query
        self.model = model
        self._pages: dict[int, float] = {}
        self._sort_costs: dict[int, float] = {}

    def cardinality(self, subset: int) -> float:
        """Output cardinality of ``subset`` (cached inside the query)."""
        return self.query.cardinality(subset)

    def pages(self, subset: int) -> float:
        """``query.pages(subset)``, memoized per subset."""
        pages = self._pages.get(subset)
        if pages is None:
            pages = self.query.pages(subset)
            self._pages[subset] = pages
        return pages

    def sort_cost(self, subset: int) -> float:
        """External-sort cost of ``subset``'s pages, memoized per subset."""
        cost = self._sort_costs.get(subset)
        if cost is None:
            cost = external_sort_cost(self.pages(subset), self.model.buffer_pages)
            self._sort_costs[subset] = cost
        return cost

    def __len__(self) -> int:
        return len(self._pages) + len(self._sort_costs)
