"""Fast-path detection shim: the only module that may import numpy.

Everything the accelerated substrate needs to know about its
environment is probed here, once, behind small functions:

* ``numpy_or_none()`` — the optional numpy module (cached import probe).
  The ``fastpath-guard`` lint rule enforces that no other module under
  ``src/repro`` imports numpy directly, so the pure-python oracle stays
  dependency-free by construction.
* ``is_compiled(module)`` / ``compiled_core_active()`` — whether the
  mypyc-compiled optional build (``pip install -e .[compiled]`` with
  ``REPRO_COMPILE=1``) replaced the hot modules with C extensions.
* ``fastpath_mode()`` / ``resolve_fastpath()`` — the ``REPRO_FASTPATH``
  escape hatch (``off`` disables the fast path everywhere, ``on`` forces
  it for every top-down run, ``auto`` — the default — activates it only
  where requested via the ``!fast`` registry suffix or
  ``--fastpath on``).

Precedence, most binding first: ``REPRO_FASTPATH=off`` > an explicit
``on``/``off`` override (CLI flag or ``make_optimizer(fastpath=...)``)
> ``REPRO_FASTPATH=on`` > the ``!fast`` name suffix > default (oracle).
"""

from __future__ import annotations

import os
from types import ModuleType
from typing import Any

__all__ = [
    "FASTPATH_ENV",
    "available_backends",
    "compiled_core_active",
    "default_backend",
    "fastpath_mode",
    "is_compiled",
    "numpy_or_none",
    "resolve_fastpath",
]

#: Environment escape hatch: ``off`` | ``on`` | ``auto`` (default).
FASTPATH_ENV = "REPRO_FASTPATH"

#: Cached result of the numpy import probe (module, None, or unset).
_NUMPY_PROBE: list[Any] = []


def numpy_or_none() -> Any:
    """The numpy module if importable, else ``None`` (probed once).

    Tests simulate a numpy-free environment by monkeypatching the
    cached slot (:func:`_reset_numpy_probe`); production code must call
    this shim instead of importing numpy so the fallback is exercised
    uniformly.
    """
    if not _NUMPY_PROBE:
        try:
            import numpy
        except ImportError:
            _NUMPY_PROBE.append(None)
        else:
            _NUMPY_PROBE.append(numpy)
    return _NUMPY_PROBE[0]


def _reset_numpy_probe(value: Any = None, *, clear: bool = False) -> None:
    """Test hook: override (or with ``clear``, re-arm) the numpy probe."""
    _NUMPY_PROBE.clear()
    if not clear:
        _NUMPY_PROBE.append(value)


def is_compiled(module: ModuleType) -> bool:
    """Whether ``module`` was replaced by a compiled extension."""
    return str(getattr(module, "__file__", "")).endswith((".so", ".pyd"))


def compiled_core_active() -> bool:
    """Whether the optional mypyc build of the hot core is loaded.

    ``repro.core.bitset`` is the canary: it is first in the compile list
    of ``setup.py``, so its module kind reflects the whole build.  Note
    that ``REPRO_FASTPATH=off`` cannot *unload* an installed compiled
    core — it only disables the batched fast-path enumerator; rebuild
    without ``REPRO_COMPILE=1`` to get byte-code modules back.
    """
    from repro.core import bitset

    return is_compiled(bitset)


def fastpath_mode() -> str:
    """The ``REPRO_FASTPATH`` setting: ``auto`` (default), ``on``, ``off``."""
    value = os.environ.get(FASTPATH_ENV, "auto").strip().lower() or "auto"
    if value not in {"auto", "on", "off"}:
        raise ValueError(
            f"invalid {FASTPATH_ENV}={value!r}; expected auto, on, or off"
        )
    return value


def resolve_fastpath(requested: bool, override: str | None = None) -> bool:
    """Decide whether a run should use the fast path.

    ``requested`` is the per-name signal (the ``!fast`` suffix);
    ``override`` an explicit ``on``/``off``/``auto`` from the CLI or a
    ``make_optimizer(fastpath=...)`` caller (``None`` means ``auto``).
    ``REPRO_FASTPATH=off`` beats everything — it is the escape hatch
    that must make the whole suite run the oracle.
    """
    mode = fastpath_mode()
    if mode == "off":
        return False
    if override == "off":
        return False
    if override == "on":
        return True
    if mode == "on":
        return True
    return requested


def default_backend() -> str:
    """The batch backend a fresh kernel picks: numpy when importable."""
    return "numpy" if numpy_or_none() is not None else "python"


def available_backends() -> tuple[str, ...]:
    """Every batch backend buildable in this environment."""
    if numpy_or_none() is not None:
        return ("python", "numpy")
    return ("python",)
