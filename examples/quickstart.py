#!/usr/bin/env python
"""Quickstart: optimize a star (data-warehouse) join with TBNMC.

Builds an 8-relation star query — one fact table joined to seven
dimensions, the canonical OLAP shape — and optimizes it with the paper's
optimal top-down bushy CP-free algorithm, printing the plan tree and the
enumeration counters.

Run:  python examples/quickstart.py
"""

from repro import Catalog, Metrics, Query, make_optimizer

# -- 1. Describe the schema: one fact table and seven dimensions. ----------
catalog = Catalog()
fact = catalog.add_relation("sales", cardinality=50_000_000)
dimensions = {
    "date": 3_650,
    "store": 1_200,
    "product": 85_000,
    "customer": 2_000_000,
    "promotion": 400,
    "channel": 12,
    "supplier": 9_000,
}
for name, rows in dimensions.items():
    index = catalog.add_relation(name, rows)
    # Foreign-key join: selectivity ~ 1 / |dimension|.
    catalog.add_predicate(fact, index, 1.0 / rows)

query = Query.from_catalog(catalog)
print(f"optimizing: {query.describe()}\n")

# -- 2. Optimize with the paper's optimal top-down algorithm. ---------------
metrics = Metrics()
optimizer = make_optimizer("TBNmc", query, metrics=metrics)
plan = optimizer.optimize()

print("optimal plan:")
print(plan.tree_string())
print(f"\njoin order: {plan.sql_like()}")
print(f"estimated I/O cost: {plan.cost:,.0f} pages")

# -- 3. Inspect what the enumeration did. ------------------------------------
print(
    f"\nenumerated {metrics.logical_joins_enumerated} logical joins "
    f"({metrics.join_operators_costed} physical operators costed), "
    f"built {metrics.bcc_trees_built} biconnection trees, "
    f"stored {optimizer.memo.plan_cells()} plans in the memo"
)
