#!/usr/bin/env python
"""Demand-driven interesting orders (the first top-down enhancement).

Section 1 lists demand-driven interesting orders among the benefits of
top-down search: an order requirement (say, ORDER BY on a join key) is
pushed *down* into the search on demand, so an order-producing operator
(here, sort-merge join) can satisfy it for free where a bottom-up
optimizer would tack a sort onto the finished plan.

This example requests the final result sorted on each relation's join
key in turn and compares

* **demand-driven**: ``optimize(order=o)`` — Algorithm 1's ``o``
  machinery, memo keyed by ``(expression, order)``;
* **sort-on-top**: the unordered optimum wrapped in a sort enforcer.

Demand-driven is never worse, and whenever the optimal ordered plan ends
in a sort-merge join it is strictly better.

Run:  python examples/interesting_orders.py
"""

from repro import CostModel, TopDownEnumerator
from repro.partition import MinCutLazy
from repro.workloads import chain, weighted_query

model = CostModel()
query = weighted_query(chain(5), rng=3)
enumerator = TopDownEnumerator(query, MinCutLazy(), model)
unordered = enumerator.optimize()

print(f"query: {query.describe()}")
print(f"unordered optimum: cost={unordered.cost:,.0f}  {unordered.sql_like()}\n")
print(f"{'order on':>10} {'demand-driven':>15} {'sort-on-top':>13} {'saving':>8}  top operator")

total_wins = 0
for order in range(query.n):
    demanded = enumerator.optimize(order=order)
    sort_on_top = model.build_sort(query, unordered, order)
    saving = 1 - demanded.cost / sort_on_top.cost
    if demanded.cost < sort_on_top.cost * (1 - 1e-9):
        total_wins += 1
    print(
        f"{query.relation_name(order):>10} {demanded.cost:>15,.0f} "
        f"{sort_on_top.cost:>13,.0f} {saving:>7.1%}  {demanded.op}"
    )
    assert demanded.cost <= sort_on_top.cost * (1 + 1e-9)

print(
    f"\ndemand-driven ordering beat the sort-on-top fallback on "
    f"{total_wins}/{query.n} requested orders (it can never lose: the "
    "fallback is one of the alternatives it considers)."
)
