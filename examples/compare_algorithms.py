#!/usr/bin/env python
"""Compare every Table 1 algorithm on one query.

Runs all registry algorithms over a randomly weighted cyclic query,
groups them by search space, verifies that every algorithm in a space
finds the same optimal cost, and prints a league table of enumeration
effort (logical joins considered, wall-clock time) — a miniature of the
paper's Figures 6-12.

Run:  python examples/compare_algorithms.py [n] [cyclicity] [seed]
"""

import sys
import time

from repro import Metrics, available_algorithms, make_optimizer
from repro.registry import parse_name
from repro.workloads import random_connected_graph, weighted_query


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    cyclicity = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    graph = random_connected_graph(n, cyclicity, seed)
    query = weighted_query(graph, seed)
    print(f"query: {query.describe()}  (cyclicity={cyclicity}, seed={seed})\n")

    rows = []
    for name in available_algorithms(include_bounded=False):
        spec = parse_name(name)
        if spec.space.allows_cartesian_products and not spec.space.is_left_deep and n > 11:
            continue  # 3^n space: keep the demo quick
        metrics = Metrics()
        optimizer = make_optimizer(name, query, metrics=metrics)
        start = time.perf_counter()
        plan = optimizer.optimize()
        elapsed = (time.perf_counter() - start) * 1e3
        rows.append((spec.space.describe(), name, plan.cost,
                     metrics.logical_joins_enumerated, elapsed))

    rows.sort(key=lambda r: (r[0], r[4]))
    current_space = None
    print(f"{'algorithm':<12} {'cost':>14} {'logical joins':>14} {'ms':>9}")
    for space, name, cost, joins, elapsed in rows:
        if space != current_space:
            current_space = space
            print(f"\n-- {space} --")
        print(f"{name:<12} {cost:>14.6g} {joins:>14} {elapsed:>9.2f}")

    # Sanity: within each space, all costs agree.
    by_space: dict[str, set[float]] = {}
    for space, _, cost, _, _ in rows:
        by_space.setdefault(space, set()).add(round(cost, 6))
    for space, costs in by_space.items():
        assert len(costs) == 1, f"cost disagreement in {space}: {costs}"
    print("\nall algorithms agree on the optimum within each space ✔")
    return 0


if __name__ == "__main__":
    sys.exit(main())
