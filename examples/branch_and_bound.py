#!/usr/bin/env python
"""Branch-and-bound: the accumulated-cost pathology, reproduced live.

Section 4 of the paper reports a surprise: accumulated-cost bounding
(Algorithm 7, the budget mechanism of Volcano/Cascades/Columbia) prunes
memo storage hard, yet on larger star queries it makes the optimizer
*slower* than exhaustive search, because threading budgets through the
recursion undercuts memoization — the same logical expression is
re-optimized again and again under different budgets.  Predicted-cost
bounding (Columbia's lower-bound test) keeps the divide-and-conquer
structure intact and only ever helps.

This example optimizes growing star queries with all four variants of
TBNMC and prints CPU time, memo cells, and the re-expansion counter that
explains the effect.

Run:  python examples/branch_and_bound.py
"""

import time

from repro import Metrics, make_optimizer
from repro.workloads import star, weighted_query

VARIANTS = ("", "A", "P", "AP")

print(f"{'n':>3} | " + " | ".join(
    f"{'TBNmc' + v or 'TBNmc':>10} {'cells':>6} {'re-exp':>6}" for v in VARIANTS
))
print("-" * 100)

for n in (6, 8, 10, 11):
    cells_of = {}
    line = [f"{n:>3} |"]
    for variant in VARIANTS:
        metrics = Metrics()
        optimizer = make_optimizer(
            "TBNmc" + variant, weighted_query(star(n), rng=n * 7919), metrics=metrics
        )
        start = time.perf_counter()
        plan = optimizer.optimize()
        elapsed = (time.perf_counter() - start) * 1e3
        cells_of[variant] = plan.cost
        line.append(
            f"{elapsed:>8.1f}ms {optimizer.memo.populated_cells():>6} "
            f"{metrics.expressions_reexpanded:>6} |"
        )
    assert len({round(c, 6) for c in cells_of.values()}) == 1  # same optimum
    print(" ".join(line))

print(
    "\nReading the table: the exhaustive column never re-expands an\n"
    "expression; the A column re-expands thousands of times and its\n"
    "runtime deteriorates with n, while P stays reliably below the\n"
    "exhaustive time — the paper's Figures 15/16 in miniature."
)
