#!/usr/bin/env python
"""A global plan cache shared between similar queries (Section 5.1).

A reporting workload rarely sends one isolated query: dashboards fire
families of queries that share join subexpressions.  Bottom-up dynamic
programming must re-derive every shared subplan per query; top-down
partitioning search can treat the memo as a *cache* keyed by canonical
logical expression and simply skip whole subtrees it has seen before —
and because the search degrades gracefully when a cell is missing, the
cache can be capacity-limited with any eviction policy.

This example optimizes a sliding window of chain queries
(R1⋈R2⋈R3⋈R4, R2⋈R3⋈R4⋈R5, ...) twice: cold (fresh memo each time) and
warm (one shared GlobalPlanCache), comparing the number of expression
expansions.

Run:  python examples/plan_cache.py
"""

from repro import Catalog, GlobalPlanCache, Metrics, Query, TopDownEnumerator
from repro.partition import MinCutLazy

#: A little schema of ten relations in a chain of foreign keys.
CARDINALITIES = [10_000 * (i + 1) for i in range(10)]


def window_query(start: int, width: int = 4) -> Query:
    catalog = Catalog()
    for i in range(start, start + width):
        catalog.add_relation(f"R{i}", CARDINALITIES[i])
    for j in range(width - 1):
        catalog.add_predicate(j, j + 1, 0.001)
    return Query.from_catalog(catalog)


queries = [window_query(start) for start in range(6)]

cold_total = 0
for query in queries:
    metrics = Metrics()
    TopDownEnumerator(query, MinCutLazy(), metrics=metrics).optimize()
    cold_total += metrics.expressions_expanded

cache = GlobalPlanCache()
warm_total = 0
costs_match = True
for query in queries:
    metrics = Metrics()
    warm_plan = TopDownEnumerator(query, MinCutLazy(), memo=cache, metrics=metrics).optimize()
    cold_plan = TopDownEnumerator(query, MinCutLazy()).optimize()
    costs_match &= abs(warm_plan.cost - cold_plan.cost) < 1e-9 * cold_plan.cost
    warm_total += metrics.expressions_expanded

print(f"{len(queries)} sliding-window queries of 4 relations each")
print(f"  cold (fresh memo per query): {cold_total} expression expansions")
print(f"  warm (shared plan cache):    {warm_total} expression expansions")
print(f"  saved: {cold_total - warm_total} "
      f"({100 * (1 - warm_total / cold_total):.0f}% of the work)")
print(f"  every warm plan identical in cost to its cold plan: {costs_match}")
assert costs_match and warm_total < cold_total
