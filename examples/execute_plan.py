#!/usr/bin/env python
"""End to end: parse a query, optimize it, and actually run the plan.

Uses the textual query DSL, the optimizer, the synthetic data generator,
and the execution engine together.  Also demonstrates the semantic
invariant behind the whole repository: plans from *different* algorithms
and plan spaces execute to exactly the same result set.

Run:  python examples/execute_plan.py
"""

from repro import make_optimizer
from repro.catalog.parser import parse_query
from repro.exec import ExecutionEngine, generate_database

QUERY_TEXT = (
    "orders(200000) customer(40000) nation(25) region(5) supplier(1000);"
    "orders-customer:2.5e-5 customer-nation:0.04 nation-region:0.2 "
    "supplier-nation:0.04"
)

query = parse_query(QUERY_TEXT)
print(f"query: {query.describe()}")

# min_rows >= max_domain makes every table cover its key domains, so the
# tiny dimension tables behave like enumerated primary-key tables.
database = generate_database(query, rng=7, max_rows=120, min_rows=8, max_domain=8)
for v in range(query.n):
    print(f"  {query.relations[v].name:<9} {database.row_count(v):>3} rows "
          f"(scaled from {query.relations[v].cardinality:,.0f})")

engine = ExecutionEngine(database)
signatures = {}
for algorithm in ("TBNmc", "TLNmc", "BBNccp", "TBCnaiveP"):
    plan = make_optimizer(algorithm, query).optimize()
    rows = engine.execute(plan)
    signatures[algorithm] = engine.result_signature(plan)
    print(f"\n{algorithm}: cost={plan.cost:,.0f}  {plan.sql_like()}")
    print(f"  executed -> {len(rows)} result rows")

assert len(set(signatures.values())) == 1
print(
    "\nall four plans (different shapes, different search spaces, "
    "different algorithms)\nproduced the identical result set ✔"
)

sample = sorted(next(iter(signatures.values())))[:3]
print(f"sample result provenance (base-row ids): {sample}")
