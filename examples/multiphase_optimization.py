#!/usr/bin/env python
"""Multi-phase optimization over growing search spaces (Section 5.2).

An application demanding the globally optimal plan must eventually search
bushy trees *with* cartesian products — a Θ(3^n) space.  A bottom-up
optimizer gains nothing from first solving a smaller space, but a
top-down optimizer with branch-and-bound turns the smaller space's
optimum into an initial upper bound that prunes the big search.

This example optimizes a weighted acyclic query three ways:

1. single-phase exhaustive search of bushy-with-CP space (TBCnaive);
2. single-phase predicted-cost search (TBCnaiveP);
3. two-phase: optimal CP-free search first, its plan seeding a
   predicted-cost search of the full space (TBNmcP + TBCnaiveP).

Run:  python examples/multiphase_optimization.py [n] [seed]
"""

import sys
import time

from repro import Metrics, make_optimizer, optimize_multiphase
from repro.workloads import random_connected_graph, weighted_query


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return label, elapsed, result


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    query = weighted_query(random_connected_graph(n, 0.0, seed), seed)
    print(f"query: {query.describe()}\n")

    runs = []
    metrics1 = Metrics()
    runs.append(timed(
        "exhaustive (TBCnaive)",
        make_optimizer("TBCnaive", query, metrics=metrics1).optimize,
    ))
    metrics2 = Metrics()
    runs.append(timed(
        "predicted-cost (TBCnaiveP)",
        make_optimizer("TBCnaiveP", query, metrics=metrics2).optimize,
    ))
    runs.append(timed(
        "two-phase (TBNmcP + TBCnaiveP)",
        lambda: optimize_multiphase(query, ["TBNmcP", "TBCnaiveP"]).plan,
    ))

    costs = set()
    print(f"{'strategy':<32} {'seconds':>9} {'plan cost':>14}")
    for label, elapsed, result in runs:
        plan = result if hasattr(result, "cost") else result.plan
        costs.add(round(plan.cost, 6))
        print(f"{label:<32} {elapsed:>9.3f} {plan.cost:>14.6g}")
    assert len(costs) == 1, "all strategies must find the global optimum"

    print(
        "\nAll three find the same global optimum; pruning shrinks the\n"
        "Θ(3^n) search dramatically, and the CP-free first phase is cheap\n"
        "insurance that usually pays for itself (paper Table 2)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
