#!/usr/bin/env python
"""Optimizing under a memory budget (Section 5.1's CPU/storage trade-off).

Embedded and small-footprint databases (the paper cites SQL Anywhere)
cannot afford the Ω(2^n) memo of dynamic programming.  Top-down
partitioning search is the first DP-based method that degrades
gracefully: cap the memo at any number of cells with LRU eviction and
the search recomputes evicted subplans on demand — trading CPU for
memory while *never* losing optimality.

This example optimizes one star query with memo capacities from 100 %
down to 0 % of what exhaustive enumeration populates, verifying that the
plan cost never changes while CPU time rises.

Run:  python examples/memory_constrained.py
"""

import time

from repro import MemoTable, Metrics, make_optimizer
from repro.workloads import star, weighted_query

# Kept small: below ~5% capacity the search re-derives nearly every
# subexpression per use, which is exponential in n by design.
N = 8
SEED = 5

query = weighted_query(star(N), SEED)

# Dry run to learn the unconstrained memo footprint.
dry = make_optimizer("TLNmc", query)
reference_plan = dry.optimize()
full_cells = dry.memo.populated_cells()
print(f"star query, n={N}: unconstrained memo uses {full_cells} cells\n")

print(f"{'capacity':>9} {'cells':>6} {'evictions':>10} {'expansions':>11} "
      f"{'ms':>8} {'cost drift':>11}")
for fraction in (1.0, 0.25, 0.10, 0.05, 0.01, 0.0):
    capacity = round(fraction * full_cells)
    metrics = Metrics()
    memo = MemoTable(capacity=capacity, metrics=metrics)
    optimizer = make_optimizer("TLNmc", query, memo=memo, metrics=metrics)
    start = time.perf_counter()
    plan = optimizer.optimize()
    elapsed = (time.perf_counter() - start) * 1e3
    drift = abs(plan.cost - reference_plan.cost) / reference_plan.cost
    print(
        f"{fraction:>8.0%} {capacity:>6} {metrics.memo_evictions:>10} "
        f"{metrics.expressions_expanded:>11} {elapsed:>8.2f} {drift:>11.2g}"
    )
    assert drift < 1e-9, "optimality must never depend on memo capacity"

print(
    "\nPlan cost is bit-identical at every capacity — only CPU time\n"
    "changes.  Bottom-up dynamic programming would simply fail below\n"
    "100%: its correctness depends on every entry staying resident."
)
